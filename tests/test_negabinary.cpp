#include "core/negabinary.hpp"

#include <gtest/gtest.h>

#include "core/modular.hpp"
#include "core/nu.hpp"

namespace bc = bine::core;
using bine::i64;
using bine::Rank;
using bine::u64;

// --- Paper worked examples (Sec. 2.3.1, Fig. 3, Fig. 4, Fig. 6) ------------

TEST(Negabinary, PaperExampleTwoIs110) {
  // "the number 2 is represented as 110_{-2}"
  EXPECT_EQ(bc::to_negabinary(2), 0b110u);
  EXPECT_EQ(bc::from_negabinary(0b110), 2);
}

TEST(Negabinary, PaperExampleMinusOneIs011) {
  // "negabinary representations can encode both positive and negative
  //  integers (e.g., 011_{-2} = -1)"
  EXPECT_EQ(bc::from_negabinary(0b011), -1);
  EXPECT_EQ(bc::to_negabinary(-1), 0b11u);
}

TEST(Negabinary, PaperExampleMaxOnSixBitsIs21) {
  // "on six bits m = 010101_{-2} = 16 + 4 + 1 = 21"
  EXPECT_EQ(bc::max_on_bits(6), 21);
}

TEST(Negabinary, MaxOnBitsSmallCases) {
  EXPECT_EQ(bc::max_on_bits(1), 1);
  EXPECT_EQ(bc::max_on_bits(2), 1);
  EXPECT_EQ(bc::max_on_bits(3), 5);  // 101_{-2} = 4 + 1 (Fig. 3 E)
  EXPECT_EQ(bc::max_on_bits(4), 5);
  EXPECT_EQ(bc::max_on_bits(5), 21);
}

TEST(Negabinary, MinOnBitsSmallCases) {
  EXPECT_EQ(bc::min_on_bits(1), 0);
  EXPECT_EQ(bc::min_on_bits(2), -2);
  EXPECT_EQ(bc::min_on_bits(3), -2);
  EXPECT_EQ(bc::min_on_bits(4), -10);
}

TEST(Negabinary, PaperRank2NbExamples) {
  // "rank2nb(2, 8) = 110_{-2} and rank2nb(6, 8) = 010_{-2}"
  EXPECT_EQ(bc::rank2nb(2, 8), 0b110u);
  EXPECT_EQ(bc::rank2nb(6, 8), 0b010u);
  // Fig. 3 G: rank 6 in an 8-node tree is represented as 6 - 8 = -2.
  EXPECT_EQ(bc::from_negabinary(0b010), -2);
  // Fig. 4 A: rank2nb(8) = 1000 on 16 ranks.
  EXPECT_EQ(bc::rank2nb(8, 16), 0b1000u);
  // Fig. 4 B: rank 7 is 1011 on 16 ranks.
  EXPECT_EQ(bc::rank2nb(7, 16), 0b1011u);
}

TEST(Negabinary, EqualLsbRunPaperExamples) {
  // "for a 16-node Bine tree, u = 3 for 1000, and u = 2 for 1011"
  EXPECT_EQ(bc::equal_lsb_run(0b1000, 4), 3);
  EXPECT_EQ(bc::equal_lsb_run(0b1011, 4), 2);
  EXPECT_EQ(bc::equal_lsb_run(0b0000, 4), 4);
  EXPECT_EQ(bc::equal_lsb_run(0b1111, 4), 4);
  EXPECT_EQ(bc::equal_lsb_run(0b0001, 4), 1);
}

TEST(Negabinary, OnesValueMatchesClosedForm) {
  // sum_{k=0}^{c-1} (-2)^k == (1 - (-2)^c) / 3
  i64 pow = 1;  // (-2)^c
  for (int c = 0; c <= 20; ++c) {
    EXPECT_EQ(bc::negabinary_ones_value(c), (1 - pow) / 3) << "c=" << c;
    pow *= -2;
  }
  EXPECT_EQ(bc::negabinary_ones_value(0), 0);
  EXPECT_EQ(bc::negabinary_ones_value(1), 1);
  EXPECT_EQ(bc::negabinary_ones_value(2), -1);
  EXPECT_EQ(bc::negabinary_ones_value(3), 3);
  EXPECT_EQ(bc::negabinary_ones_value(4), -5);
  EXPECT_EQ(bc::negabinary_ones_value(5), 11);
}

// --- Properties -------------------------------------------------------------

class NegabinaryRoundTrip : public ::testing::TestWithParam<i64> {};

TEST_P(NegabinaryRoundTrip, Nb2RankInvertsRank2Nb) {
  const i64 p = GetParam();
  for (Rank r = 0; r < p; ++r) {
    EXPECT_EQ(bc::nb2rank(bc::rank2nb(r, p), p), r) << "p=" << p << " r=" << r;
  }
}

TEST_P(NegabinaryRoundTrip, SBitPatternsCoverAllRanks) {
  const i64 p = GetParam();
  std::vector<int> seen(static_cast<size_t>(p), 0);
  for (u64 nb = 0; nb < static_cast<u64>(p); ++nb)
    seen[static_cast<size_t>(bc::nb2rank(nb, p))]++;
  for (Rank r = 0; r < p; ++r) EXPECT_EQ(seen[static_cast<size_t>(r)], 1);
}

TEST_P(NegabinaryRoundTrip, RepresentableRangeIsContiguous) {
  const i64 p = GetParam();
  const int s = bine::log2_exact(p);
  EXPECT_EQ(bc::max_on_bits(s) - bc::min_on_bits(s) + 1, p);
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, NegabinaryRoundTrip,
                         ::testing::Values<i64>(2, 4, 8, 16, 32, 64, 128, 256, 512, 1024,
                                                4096, 8192));

TEST(Negabinary, EncodeDecodeRoundTripWideRange) {
  for (i64 v = -5000; v <= 5000; ++v) {
    EXPECT_EQ(bc::from_negabinary(bc::to_negabinary(v)), v) << v;
  }
}

TEST(Negabinary, EncodeMatchesDefinition) {
  // Each encoded pattern re-evaluates to the value under sum b_j (-2)^j.
  for (i64 v = -200; v <= 200; ++v) {
    const u64 bits = bc::to_negabinary(v);
    i64 acc = 0, pow = 1;
    for (int j = 0; j < 63; ++j) {
      if ((bits >> j) & 1) acc += pow;
      pow *= -2;
    }
    EXPECT_EQ(acc, v);
  }
}

// --- nu representation (Sec. 3.2.1) -----------------------------------------

TEST(Nu, PaperFig6Examples) {
  // r = 1 (odd):  h = rank2nb(1) = 001, nu = 001 ^ 000 = 001
  EXPECT_EQ(bc::h_repr(1, 8), 0b001u);
  EXPECT_EQ(bc::nu(1, 8), 0b001u);
  // r = 6 (even): h = rank2nb(8 - 6) = rank2nb(2) = 110, nu = 110 ^ 011 = 101
  EXPECT_EQ(bc::h_repr(6, 8), 0b110u);
  EXPECT_EQ(bc::nu(6, 8), 0b101u);
}

TEST(Nu, Fig6FullRowFor8Ranks) {
  // nu(rank) row in Fig. 6: 000 001 011 100 110 111 101 010
  const u64 expected[8] = {0b000, 0b001, 0b011, 0b100, 0b110, 0b111, 0b101, 0b010};
  for (Rank r = 0; r < 8; ++r) EXPECT_EQ(bc::nu(r, 8), expected[r]) << "r=" << r;
}

class NuBijection : public ::testing::TestWithParam<i64> {};

TEST_P(NuBijection, NuIsBijective) {
  const i64 p = GetParam();
  std::vector<int> seen(static_cast<size_t>(p), 0);
  for (Rank r = 0; r < p; ++r) {
    const u64 v = bc::nu(r, p);
    ASSERT_LT(v, static_cast<u64>(p));
    seen[static_cast<size_t>(v)]++;
  }
  for (i64 v = 0; v < p; ++v) EXPECT_EQ(seen[static_cast<size_t>(v)], 1) << v;
}

TEST_P(NuBijection, NuInverseInvertsNu) {
  const i64 p = GetParam();
  for (Rank r = 0; r < p; ++r) {
    EXPECT_EQ(bc::nu_inverse(bc::nu(r, p), p), r) << "p=" << p << " r=" << r;
  }
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, NuBijection,
                         ::testing::Values<i64>(2, 4, 8, 16, 32, 64, 256, 1024, 4096));

TEST(Nu, GrayDecodeInvertsGrayEncode) {
  for (u64 v = 0; v < 4096; ++v) {
    EXPECT_EQ(bc::gray_decode(v ^ (v >> 1)), v);
  }
}

TEST(Nu, ReverseBits) {
  EXPECT_EQ(bc::reverse_bits(0b001, 3), 0b100u);
  EXPECT_EQ(bc::reverse_bits(0b011, 3), 0b110u);
  EXPECT_EQ(bc::reverse_bits(0b110, 3), 0b011u);
  EXPECT_EQ(bc::reverse_bits(0b1011, 4), 0b1101u);
  for (u64 v = 0; v < 256; ++v) EXPECT_EQ(bc::reverse_bits(bc::reverse_bits(v, 8), 8), v);
}

// --- modular distance (Sec. 2.2) --------------------------------------------

TEST(Modular, Distance) {
  EXPECT_EQ(bc::modular_distance(0, 15, 16), 1);
  EXPECT_EQ(bc::modular_distance(0, 8, 16), 8);
  EXPECT_EQ(bc::modular_distance(0, 1, 16), 1);
  EXPECT_EQ(bc::modular_distance(2, 2, 16), 0);
  EXPECT_EQ(bc::modular_distance(0, 2, 3), 1);  // Sec 2.2: ranks 0 and 2 of 3
}

TEST(Modular, DistanceSymmetry) {
  const i64 p = 37;
  for (Rank r = 0; r < p; ++r)
    for (Rank q = 0; q < p; ++q) {
      EXPECT_EQ(bc::modular_distance(r, q, p), bc::modular_distance(q, r, p));
      EXPECT_LE(bc::modular_distance(r, q, p), p / 2);
    }
}

TEST(Modular, DisplacementConsistency) {
  const i64 p = 16;
  for (Rank r = 0; r < p; ++r)
    for (Rank q = 0; q < p; ++q) {
      const i64 d = bc::modular_displacement(r, q, p);
      EXPECT_EQ(bine::pmod(r + d, p), q);
      EXPECT_GT(d, -p / 2 - 1);
      EXPECT_LE(d, p / 2);
    }
}

TEST(Modular, RotationRoundTrip) {
  const i64 p = 32;
  for (Rank root = 0; root < p; ++root)
    for (Rank r = 0; r < p; ++r)
      EXPECT_EQ(bc::to_physical(bc::to_logical(r, root, p), root, p), r);
}
