// Plan-codec tests: the canonical JSON wire schema of exp::SweepPlan -- the
// request format of the selection service's sweep jobs. Covered: byte-stable
// round-trips (dump -> parse -> dump identical) across every serializable
// knob, plan_fingerprint survival, the non-serializable subset (custom
// backends, hand-tweaked profiles) rejected at serialize time, and a fuzz
// battery of malformed documents that must all fail strict parsing rather
// than silently run a different experiment.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "exp/plan_codec.hpp"
#include "exp/sweep.hpp"
#include "fault/fault.hpp"
#include "net/profiles.hpp"
#include "tune/decision_table.hpp"

using namespace bine;
using sched::Collective;

namespace {

exp::SweepPlan minimal_plan() {
  exp::SweepPlan plan;
  plan.name = "minimal";
  plan.systems = {exp::SystemSpec{net::lumi_profile()}};
  plan.colls = {Collective::allreduce};
  plan.series = {exp::Series::best_bine(false)};
  plan.nodes.counts = {16};
  plan.sizes = {1024};
  return plan;
}

/// Every serializable knob set away from its default.
exp::SweepPlan full_plan() {
  exp::SweepPlan plan;
  plan.name = "full \"quoted\" plan";

  exp::SystemSpec lumi{net::lumi_profile()};
  lumi.spread_placement = false;
  lumi.seed = 7;
  lumi.schedule_cache = false;
  lumi.private_cache = true;

  exp::SystemSpec fugaku{net::profile_by_name("fugaku", {4, 4, 8})};
  fugaku.torus_dims = {4, 4, 8};
  fugaku.schedule_cache = true;

  exp::SystemSpec degraded{net::leonardo_profile()};
  {
    auto parsed = fault::parse_spec("seed=9,degrade_global=0.5");
    degraded.profile.faults = parsed;
  }

  plan.systems = {lumi, fugaku, degraded};
  plan.colls = {Collective::allreduce, Collective::allgather,
                Collective::reduce_scatter};
  plan.series = {exp::Series::best_bine(true, "bine_contig"),
                 exp::Series::best_sota(),
                 exp::Series::single("ring"),
                 exp::Series::tuned(),
                 exp::Series::best_of("pair", {"ring", "rabenseifner"})};
  plan.nodes.counts = {16, 64};
  plan.nodes.extra_counts = {256};
  plan.nodes.extra_colls = {Collective::allreduce};
  plan.sizes = {1024, 1 << 20};
  plan.backend = exp::Backend::execute_verified;
  plan.elem = runtime::ElemType::f64;
  plan.op = runtime::ReduceOp::max;
  plan.exec_threads = 2;
  plan.miss_policy = tune::MissPolicy::tune_on_miss;
  plan.threads = 3;
  plan.on_error = exp::SweepPlan::OnError::isolate;
  plan.transient_retries = 2;
  plan.retry_backoff_ms = 5;
  plan.journal_salt = 0xdeadbeefcafe1234ull;
  plan.cell_deadline_ms = 60000;
  return plan;
}

void expect_plans_equal(const exp::SweepPlan& a, const exp::SweepPlan& b) {
  // Field-by-field equality through the canonical emission: two plans whose
  // dumps match are equal on every serialized knob by construction.
  EXPECT_EQ(exp::plan_to_json(a), exp::plan_to_json(b));
}

}  // namespace

TEST(PlanCodec, MinimalRoundTrip) {
  const exp::SweepPlan plan = minimal_plan();
  const std::string json = exp::plan_to_json(plan);
  const exp::SweepPlan back = exp::plan_from_json(json);
  EXPECT_EQ(exp::plan_to_json(back), json);
  expect_plans_equal(plan, back);
}

TEST(PlanCodec, FullRoundTripIsByteStable) {
  const exp::SweepPlan plan = full_plan();
  const std::string json = exp::plan_to_json(plan);
  const exp::SweepPlan back = exp::plan_from_json(json);
  EXPECT_EQ(exp::plan_to_json(back), json);

  // Spot-check the knobs that travel through non-trivial encodings.
  ASSERT_EQ(back.systems.size(), 3u);
  EXPECT_EQ(back.systems[0].profile.name, "lumi");
  EXPECT_FALSE(back.systems[0].spread_placement);
  EXPECT_EQ(back.systems[0].seed, 7u);
  ASSERT_TRUE(back.systems[0].schedule_cache.has_value());
  EXPECT_FALSE(*back.systems[0].schedule_cache);
  EXPECT_TRUE(back.systems[0].private_cache);
  EXPECT_EQ(back.systems[1].profile.dims, (std::vector<i64>{4, 4, 8}));
  EXPECT_EQ(back.systems[1].torus_dims, (std::vector<i64>{4, 4, 8}));
  ASSERT_TRUE(back.systems[2].profile.faults != nullptr);
  EXPECT_EQ(fault::spec_to_string(*back.systems[2].profile.faults),
            "seed=9,degrade_global=0.5");
  ASSERT_EQ(back.series.size(), 5u);
  EXPECT_TRUE(back.series[0].contiguous_only);
  EXPECT_EQ(back.series[2].pick, exp::Series::Pick::single);
  EXPECT_EQ(back.series[2].algorithms, (std::vector<std::string>{"ring"}));
  EXPECT_EQ(back.series[3].pick, exp::Series::Pick::tuned);
  EXPECT_EQ(back.nodes.extra_colls, (std::vector<Collective>{Collective::allreduce}));
  EXPECT_EQ(back.backend, exp::Backend::execute_verified);
  EXPECT_EQ(back.elem, runtime::ElemType::f64);
  EXPECT_EQ(back.op, runtime::ReduceOp::max);
  EXPECT_EQ(back.miss_policy, tune::MissPolicy::tune_on_miss);
  EXPECT_EQ(back.journal_salt, 0xdeadbeefcafe1234ull);
  EXPECT_EQ(back.cell_deadline_ms, 60000);
}

TEST(PlanCodec, FingerprintSurvivesRoundTrip) {
  for (const exp::SweepPlan& plan : {minimal_plan(), full_plan()}) {
    const exp::SweepPlan back = exp::plan_from_json(exp::plan_to_json(plan));
    EXPECT_EQ(exp::plan_fingerprint(back), exp::plan_fingerprint(plan));
  }
}

TEST(PlanCodec, EqualPlansSerializeIdentically) {
  EXPECT_EQ(exp::plan_to_json(full_plan()), exp::plan_to_json(full_plan()));
}

TEST(PlanCodec, ExcludedFieldsDoNotTravel) {
  exp::SweepPlan plan = minimal_plan();
  tune::DecisionTable table;
  harness::CancelToken cancel;
  plan.table = &table;
  plan.cancel = &cancel;
  plan.journal_path = "somewhere.bj";
  plan.progress = [](size_t, size_t) {};

  const exp::SweepPlan back = exp::plan_from_json(exp::plan_to_json(plan));
  EXPECT_EQ(back.table, nullptr);
  EXPECT_EQ(back.cancel, nullptr);
  EXPECT_TRUE(back.journal_path.empty());
  EXPECT_FALSE(back.progress);
  EXPECT_FALSE(back.metric);
}

TEST(PlanCodec, CustomBackendRefusesToSerialize) {
  exp::SweepPlan plan = minimal_plan();
  plan.backend = exp::Backend::custom;
  EXPECT_THROW(exp::plan_to_json(plan), std::invalid_argument);

  exp::SweepPlan with_metric = minimal_plan();
  with_metric.metric = [](const exp::CellCtx&) { return exp::Metrics{}; };
  EXPECT_THROW(exp::plan_to_json(with_metric), std::invalid_argument);
}

TEST(PlanCodec, TweakedProfileRefusesToSerialize) {
  // A hand-modified cost model must not serialize by name: the receiver
  // would rebuild a different machine and silently compute different cells.
  exp::SweepPlan plan = minimal_plan();
  plan.systems[0].profile.cost.alpha_global *= 2.0;
  EXPECT_THROW(exp::plan_to_json(plan), std::invalid_argument);
}

TEST(PlanCodec, FaultyProfileRoundTripsByFingerprint) {
  exp::SweepPlan plan = minimal_plan();
  plan.systems[0].profile.faults = fault::parse_spec("seed=3,drop=0.25");
  const exp::SweepPlan back = exp::plan_from_json(exp::plan_to_json(plan));
  EXPECT_EQ(tune::profile_fingerprint(back.systems[0].profile),
            tune::profile_fingerprint(plan.systems[0].profile));
}

// --- fuzz negatives ---------------------------------------------------------

namespace {

/// One malformed document per failure mode; every one must throw.
std::vector<std::pair<std::string, std::string>> bad_documents() {
  const std::string good = exp::plan_to_json(minimal_plan());
  const auto replaced = [&good](const std::string& from, const std::string& to) {
    std::string out = good;
    const size_t at = out.find(from);
    EXPECT_NE(at, std::string::npos) << from;
    out.replace(at, from.size(), to);
    return out;
  };
  std::vector<std::pair<std::string, std::string>> docs;
  docs.emplace_back("not json", "{nope");
  docs.emplace_back("not an object", "[1, 2]");
  docs.emplace_back("trailing garbage", good + "x");
  docs.emplace_back("wrong format",
                    replaced("\"bine-sweep-plan\"", "\"bine-sweep-plot\""));
  docs.emplace_back("wrong version", replaced("\"version\": 1", "\"version\": 99"));
  docs.emplace_back("unknown top-level key",
                    replaced("\"name\":", "\"nmae\":"));
  docs.emplace_back("duplicate key",
                    replaced("\"sizes\": [1024],",
                             "\"sizes\": [1024],\n  \"sizes\": [2048],"));
  docs.emplace_back("unknown collective",
                    replaced("\"allreduce\"", "\"allretuce\""));
  docs.emplace_back("unknown profile", replaced("\"lumi\"", "\"lumo\""));
  docs.emplace_back("unknown series pick", replaced("\"best\"", "\"bestest\""));
  docs.emplace_back("unknown series family",
                    replaced("\"family\": \"bine\"", "\"family\": \"vine\""));
  docs.emplace_back("unknown backend",
                    replaced("\"simulate\"", "\"stimulate\""));
  docs.emplace_back("custom backend", replaced("\"simulate\"", "\"custom\""));
  docs.emplace_back("unknown elem", replaced("\"u32\"", "\"u33\""));
  docs.emplace_back("unknown miss_policy",
                    replaced("\"heuristic_default\"", "\"guess\""));
  docs.emplace_back("unknown on_error", replaced("\"propagate\"", "\"explode\""));
  docs.emplace_back("schedule_cache out of domain",
                    replaced("\"default\"", "\"sometimes\""));
  docs.emplace_back("journal_salt not hex",
                    replaced("\"0x0000000000000000\"", "\"42\""));
  docs.emplace_back("journal_salt bad digit",
                    replaced("\"0x0000000000000000\"", "\"0x000000000000000g\""));
  docs.emplace_back("wrong type for sizes", replaced("[1024]", "\"1024\""));
  docs.emplace_back("wrong type for seed",
                    replaced("\"seed\": 42", "\"seed\": \"42\""));
  docs.emplace_back("unknown system key",
                    replaced("\"spread_placement\"", "\"spread_placemen\""));
  docs.emplace_back("unknown series key", replaced("\"label\"", "\"lable\""));
  docs.emplace_back("non-canonical fault spec: order",
                    replaced("\"private_cache\": false",
                             "\"private_cache\": false, "
                             "\"faults\": \"degrade_global=0.5,seed=9\""));
  docs.emplace_back("non-canonical fault spec: empty",
                    replaced("\"private_cache\": false",
                             "\"private_cache\": false, \"faults\": \"\""));
  docs.emplace_back("contiguous_only false never serialized",
                    replaced("\"family\": \"bine\"",
                             "\"family\": \"bine\", \"contiguous_only\": false"));
  docs.emplace_back("empty algorithms never serialized",
                    replaced("\"family\": \"bine\"",
                             "\"family\": \"bine\", \"algorithms\": []"));
  docs.emplace_back("extra_counts without extra_colls",
                    replaced("\"counts\": [16]",
                             "\"counts\": [16], \"extra_counts\": [64]"));
  return docs;
}

}  // namespace

TEST(PlanCodec, FuzzNegativesAllRejected) {
  for (const auto& [what, doc] : bad_documents()) {
    bool threw = false;
    try {
      (void)exp::plan_from_json(doc);
    } catch (const std::exception&) {
      threw = true;
    }
    EXPECT_TRUE(threw) << "malformed document accepted: " << what;
  }
}

TEST(PlanCodec, MissingRequiredKeyRejected) {
  // Strip each required key in turn; the parse must name the gap.
  const std::string good = exp::plan_to_json(minimal_plan());
  for (const std::string key :
       {"\"format\"", "\"version\"", "\"name\"", "\"systems\"", "\"colls\"",
        "\"series\"", "\"nodes\"", "\"sizes\"", "\"backend\"", "\"elem\"",
        "\"op\"", "\"miss_policy\"", "\"on_error\"", "\"journal_salt\""}) {
    std::string doc = good;
    const size_t at = doc.find(key);
    ASSERT_NE(at, std::string::npos) << key;
    // Comment the key out by renaming it -- but renamed keys hit the
    // unknown-key check, which is equally a rejection; both paths throw.
    doc.replace(at, 1, "\"x");
    EXPECT_THROW((void)exp::plan_from_json(doc), std::exception) << key;
  }
}
