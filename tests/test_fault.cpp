// Fault-injection & graceful-degradation layer tests: the zero-fault
// bit-identity contract, link degradation, failed-rank shrinkage with
// algorithm demotion, executor injection provably caught by verification,
// self-healing sweeps (isolation, transient retries, partial results),
// fault-tolerant tuner builds, crash-safe artifact emission, quarantine on
// load, spec parsing, and the parallel_for exception regression.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "coll/registry.hpp"
#include "exp/sweep.hpp"
#include "fault/fault.hpp"
#include "harness/parallel.hpp"
#include "harness/runner.hpp"
#include "net/profiles.hpp"
#include "tune/decision_table.hpp"
#include "tune/tuner.hpp"

using namespace bine;
using sched::Collective;

namespace {

// Every Runner consults BINE_FAULT_SPEC at construction; an inherited CI
// spec would degrade the "healthy" halves of the parity tests.
const bool env_cleared = [] {
  unsetenv("BINE_FAULT_SPEC");
  return true;
}();

std::shared_ptr<fault::FaultSpec> make_spec() {
  return std::make_shared<fault::FaultSpec>();
}

net::SystemProfile profile_with(std::shared_ptr<const fault::FaultSpec> spec) {
  net::SystemProfile p = net::lumi_profile();
  p.faults = std::move(spec);
  return p;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool file_exists(const std::string& path) {
  std::ifstream in(path);
  return in.good();
}

}  // namespace

// --- spec basics ------------------------------------------------------------

TEST(FaultSpec, TrivialityAndFingerprint) {
  ASSERT_TRUE(env_cleared);
  fault::FaultSpec spec;
  EXPECT_TRUE(spec.trivial());
  EXPECT_EQ(spec.fingerprint(), 0u);  // 0 is reserved for "healthy"

  spec.degrade_global = 0.5;
  EXPECT_FALSE(spec.trivial());
  EXPECT_NE(spec.fingerprint(), 0u);

  fault::FaultSpec other = spec;
  EXPECT_EQ(other.fingerprint(), spec.fingerprint());
  other.seed = 1;
  EXPECT_NE(other.fingerprint(), spec.fingerprint());

  // A seed alone changes nothing observable -- still trivial.
  fault::FaultSpec seeded;
  seeded.seed = 99;
  EXPECT_TRUE(seeded.trivial());
}

TEST(FaultSpec, DeterministicSampling) {
  fault::FaultSpec spec;
  spec.seed = 7;
  spec.link_outage_fraction = 0.3;
  spec.drop_fraction = 0.25;
  i64 dead = 0;
  for (i64 l = 0; l < 1000; ++l) {
    EXPECT_EQ(spec.link_dead(l), spec.link_dead(l));  // pure function
    dead += spec.link_dead(l) ? 1 : 0;
  }
  // The seeded hash should land near the fraction (law of large numbers
  // with a wide deterministic margin).
  EXPECT_GT(dead, 200);
  EXPECT_LT(dead, 400);

  i64 dropped = 0;
  for (u64 d = 0; d < 1000; ++d) {
    EXPECT_EQ(spec.drop_delivery(3, d), spec.drop_delivery(3, d));
    dropped += spec.drop_delivery(3, d) ? 1 : 0;
  }
  EXPECT_GT(dropped, 150);
  EXPECT_LT(dropped, 350);
  // Zero fractions never fire.
  fault::FaultSpec clean;
  for (u64 d = 0; d < 100; ++d) {
    EXPECT_FALSE(clean.drop_delivery(0, d));
    EXPECT_FALSE(clean.corrupt_delivery(0, d));
  }
  for (i64 l = 0; l < 100; ++l) EXPECT_FALSE(clean.link_dead(l));
}

TEST(FaultSpec, SurvivorRanks) {
  fault::FaultSpec spec;
  spec.failed_ranks = {3, 5, 5, 99};  // duplicates and out-of-range ids allowed
  EXPECT_TRUE(spec.rank_failed(3));
  EXPECT_FALSE(spec.rank_failed(4));
  EXPECT_EQ(spec.survivor_count(8), 6);
  EXPECT_EQ(spec.survivor_ranks(8), (std::vector<Rank>{0, 1, 2, 4, 6, 7}));
}

TEST(FaultSpec, ValidateRejectsOutOfDomain) {
  fault::FaultSpec spec;
  spec.degrade_global = 0.0;  // factors live in (0, 1]
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = {};
  spec.degrade_local = 1.5;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = {};
  spec.drop_fraction = -0.1;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = {};
  spec.failed_ranks = {-1};
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = {};
  spec.link_outage_fraction = 1.5;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(FaultSpec, ParseSpecRoundTrip) {
  const auto spec = fault::parse_spec(
      "seed=7,degrade_global=0.5,degrade_local=0.9,degrade_intra=0.95,"
      "outage=0.02,dead_bw=2,drop=0.01,corrupt=0.02,failed=0:3:5,dead_links=1:4");
  ASSERT_NE(spec, nullptr);
  EXPECT_EQ(spec->seed, 7u);
  EXPECT_DOUBLE_EQ(spec->degrade_global, 0.5);
  EXPECT_DOUBLE_EQ(spec->degrade_local, 0.9);
  EXPECT_DOUBLE_EQ(spec->degrade_intra_node, 0.95);
  EXPECT_DOUBLE_EQ(spec->link_outage_fraction, 0.02);
  EXPECT_DOUBLE_EQ(spec->dead_link_bandwidth, 2.0);
  EXPECT_DOUBLE_EQ(spec->drop_fraction, 0.01);
  EXPECT_DOUBLE_EQ(spec->corrupt_fraction, 0.02);
  EXPECT_EQ(spec->failed_ranks, (std::vector<Rank>{0, 3, 5}));
  EXPECT_EQ(spec->dead_links, (std::vector<i64>{1, 4}));

  EXPECT_EQ(fault::parse_spec(""), nullptr);
  EXPECT_THROW((void)fault::parse_spec("nonsense"), std::invalid_argument);
  EXPECT_THROW((void)fault::parse_spec("seed"), std::invalid_argument);
  EXPECT_THROW((void)fault::parse_spec("unknown_key=1"), std::invalid_argument);
  EXPECT_THROW((void)fault::parse_spec("drop=abc"), std::invalid_argument);
  EXPECT_THROW((void)fault::parse_spec("failed=1:x"), std::invalid_argument);
}

// Strict parsing with positions: every rejection names the offending byte
// offset (the tune/json error style), and trailing garbage never passes.
TEST(FaultSpec, ParseSpecReportsBytePositions) {
  const auto fails_at = [](const std::string& spec, const std::string& what,
                           const std::string& at) {
    try {
      (void)fault::parse_spec(spec);
      ADD_FAILURE() << "accepted: " << spec;
    } catch (const std::invalid_argument& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find(what), std::string::npos) << spec << " -> " << msg;
      EXPECT_NE(msg.find("at byte " + at), std::string::npos)
          << spec << " -> " << msg;
    }
  };
  fails_at("drop=0.5junk", "trailing garbage", "8");  // after "drop=0.5"
  fails_at("seed=7,drop=0.5 ", "bad number", "12");   // embedded whitespace
  fails_at("seed= 7", "bad integer", "5");
  fails_at("seed=7,", "trailing ','", "7");
  fails_at("seed=7,,drop=0.1", "empty key=value pair", "7");
  fails_at("=7", "empty key", "0");
  fails_at("seed=", "empty value", "5");
  fails_at("seed=7,seed=9", "duplicate key", "7");
  fails_at("seed=7,unknown_key=1", "unknown key", "7");
  fails_at("seed=0x7", "trailing garbage", "6");
  fails_at("failed=1::3", "empty list entry", "9");
  fails_at("drop", "expected key=value", "0");

  // The strict parser still accepts everything the round-trip test feeds it
  // (covered above); spot-check that values at non-zero offsets parse.
  const auto ok = fault::parse_spec("seed=7,drop=0.25");
  ASSERT_NE(ok, nullptr);
  EXPECT_DOUBLE_EQ(ok->drop_fraction, 0.25);
}

TEST(FaultSpec, Classification) {
  const fault::TransientError t("link flap");
  const std::runtime_error p("broken invariant");
  EXPECT_EQ(fault::classify(t), fault::FaultClass::transient);
  EXPECT_EQ(fault::classify(p), fault::FaultClass::permanent);
  EXPECT_STREQ(fault::to_string(fault::FaultClass::transient), "transient");
  try {
    throw fault::TransientError("flap");
  } catch (...) {
    EXPECT_EQ(fault::classify_current_exception(), fault::FaultClass::transient);
    EXPECT_EQ(fault::describe_current_exception(), "flap");
  }
}

// --- zero-fault bit-identity ------------------------------------------------

// A trivial spec must be indistinguishable from no spec at all: every
// registered algorithm, threads 1 and 4, schedule cache on and off, compared
// bitwise.
TEST(FaultParity, ZeroFaultSpecIsBitIdenticalAcrossRegistry) {
  for (const bool cache : {true, false}) {
    harness::Runner healthy(net::lumi_profile());
    harness::Runner zero(profile_with(make_spec()));
    ASSERT_EQ(zero.fault_spec(), nullptr);  // trivial -> dropped at construction
    healthy.set_schedule_cache(cache);
    zero.set_schedule_cache(cache);

    std::vector<std::string> names;
    for (const Collective coll : coll::all_collectives())
      for (const auto& entry : coll::algorithms_for(coll)) {
        if (entry.specialized || !healthy.applicable(entry, 16)) continue;
        for (const i64 size : {4096LL, 65536LL}) {
          names.push_back(entry.name);
          const harness::RunResult a = healthy.run(coll, entry, 16, size);
          const harness::RunResult b = zero.run(coll, entry, 16, size);
          EXPECT_EQ(a.seconds, b.seconds) << entry.name << " size " << size;
          EXPECT_EQ(a.global_bytes, b.global_bytes) << entry.name;
          EXPECT_EQ(a.total_bytes, b.total_bytes) << entry.name;
          EXPECT_EQ(a.messages, b.messages) << entry.name;
          EXPECT_EQ(a.steps, b.steps) << entry.name;
        }
      }
    ASSERT_FALSE(names.empty());

    // Threaded sweep over the same cells: byte-identical too.
    std::vector<harness::SweepQuery> qs;
    for (const Collective coll : {Collective::allreduce, Collective::bcast}) {
      harness::SweepQuery q;
      q.coll = coll;
      q.nodes = 16;
      q.size_bytes = 65536;
      qs.push_back(q);
    }
    for (const i64 threads : {1LL, 4LL}) {
      const auto ra = healthy.sweep(qs, threads);
      const auto rb = zero.sweep(qs, threads);
      ASSERT_EQ(ra.size(), rb.size());
      for (size_t i = 0; i < ra.size(); ++i) {
        EXPECT_EQ(ra[i].first, rb[i].first);
        EXPECT_EQ(ra[i].second.seconds, rb[i].second.seconds);
      }
    }
    EXPECT_TRUE(healthy.degrade_notes().empty());
    EXPECT_TRUE(zero.degrade_notes().empty());
  }
}

// Degraded and healthy runners share the process-wide schedule cache; the
// fault epoch in the key must keep their entries apart -- running one must
// not change what the other computes.
TEST(FaultParity, DegradedRunnerDoesNotContaminateHealthyCache) {
  harness::Runner healthy(net::lumi_profile());
  const auto& algo = coll::recommended_algorithm(Collective::allreduce, 16, 65536);
  const double before = healthy.run(Collective::allreduce, algo, 16, 65536).seconds;

  auto spec = make_spec();
  spec->seed = 11;
  spec->degrade_global = 0.25;
  spec->link_outage_fraction = 0.1;
  harness::Runner degraded(profile_with(spec));
  ASSERT_NE(degraded.fault_spec(), nullptr);
  const double hurt = degraded.run(Collective::allreduce, algo, 16, 65536).seconds;
  EXPECT_GT(hurt, before);  // strictly slower: global links at quarter speed

  const double after = healthy.run(Collective::allreduce, algo, 16, 65536).seconds;
  EXPECT_EQ(before, after);
}

// --- link degradation -------------------------------------------------------

TEST(FaultDegrade, BandwidthDegradationSlowsEveryCell) {
  harness::Runner healthy(net::lumi_profile());
  auto spec = make_spec();
  spec->degrade_global = 0.5;
  spec->degrade_local = 0.9;
  harness::Runner degraded(profile_with(spec));

  for (const i64 size : {4096LL, 1048576LL}) {
    const auto& algo = coll::recommended_algorithm(Collective::allreduce, 32, size);
    const double h = healthy.run(Collective::allreduce, algo, 32, size).seconds;
    const double d = degraded.run(Collective::allreduce, algo, 32, size).seconds;
    EXPECT_GT(d, h) << "size " << size;
  }
}

TEST(FaultDegrade, ExplicitDeadLinksAreSevered) {
  auto spec = make_spec();
  spec->dead_links = {0};
  spec->dead_link_bandwidth = 1.0;  // ~1 B/s residual: enormous but finite
  harness::Runner degraded(profile_with(spec));
  const auto& algo = coll::recommended_algorithm(Collective::allreduce, 16, 4096);
  const harness::RunResult r = degraded.run(Collective::allreduce, algo, 16, 4096);
  EXPECT_TRUE(std::isfinite(r.seconds));

  harness::Runner healthy(net::lumi_profile());
  const harness::RunResult h = healthy.run(Collective::allreduce, algo, 16, 4096);
  EXPECT_GE(r.seconds, h.seconds);
}

// --- failed ranks & graceful degradation ------------------------------------

TEST(FaultRanks, CollectivesRebuildOverSurvivors) {
  auto spec = make_spec();
  spec->failed_ranks = {3, 5};
  harness::Runner r(profile_with(spec));
  EXPECT_EQ(r.effective_ranks(16), 14);

  // The communicator shrank to 14: verified execution must still pass --
  // the collective runs over the survivors, not the original 16.
  const auto& algo = coll::recommended_algorithm(Collective::allreduce, 14, 4096);
  const harness::VerifiedRun v =
      r.run_verified(Collective::allreduce, algo, 16, 4096, 1);
  EXPECT_TRUE(v.ok) << v.error;
}

TEST(FaultRanks, NonShrinkableAlgorithmIsDemotedWithNote) {
  const coll::AlgorithmEntry* pow2_algo = nullptr;
  for (const auto& entry : coll::algorithms_for(Collective::allreduce))
    if (entry.pow2_only && !entry.specialized) { pow2_algo = &entry; break; }
  ASSERT_NE(pow2_algo, nullptr) << "registry lost all pow2-only allreduces?";

  auto spec = make_spec();
  spec->failed_ranks = {0};  // 16 -> 15 survivors: not a power of two
  harness::Runner r(profile_with(spec));
  EXPECT_EQ(r.effective_ranks(16), 15);
  EXPECT_FALSE(r.applicable(*pow2_algo, 16));

  // Asking for the pow2-only algorithm anyway must degrade gracefully: the
  // cell runs the heuristic recommendation and records a clear note.
  const harness::RunResult res = r.run(Collective::allreduce, *pow2_algo, 16, 4096);
  EXPECT_GT(res.seconds, 0.0);
  const std::vector<std::string> notes = r.degrade_notes();
  ASSERT_EQ(notes.size(), 1u);
  EXPECT_NE(notes[0].find(pow2_algo->name), std::string::npos) << notes[0];
  EXPECT_NE(notes[0].find("demoted"), std::string::npos) << notes[0];

  // Same demotion again: the note stays deduplicated.
  (void)r.run(Collective::allreduce, *pow2_algo, 16, 8192);
  EXPECT_EQ(r.degrade_notes().size(), 1u);
}

TEST(FaultRanks, FewerThanTwoSurvivorsThrows) {
  auto spec = make_spec();
  for (Rank i = 0; i < 15; ++i) spec->failed_ranks.push_back(i);
  harness::Runner r(profile_with(spec));
  EXPECT_THROW((void)r.effective_ranks(16), std::runtime_error);
}

// --- executor injection -----------------------------------------------------

TEST(FaultInject, DroppedDeliveriesAreCaughtByVerification) {
  auto spec = make_spec();
  spec->seed = 3;
  spec->drop_fraction = 0.9;
  harness::Runner r(profile_with(spec));
  const auto& algo = coll::recommended_algorithm(Collective::allreduce, 16, 65536);
  const harness::VerifiedRun v =
      r.run_verified(Collective::allreduce, algo, 16, 65536, 1);
  EXPECT_FALSE(v.ok);  // 90% of deliveries discarded: provably detected
}

TEST(FaultInject, CorruptedDeliveriesAreCaughtByVerification) {
  auto spec = make_spec();
  spec->seed = 3;
  spec->corrupt_fraction = 1.0;
  harness::Runner r(profile_with(spec));
  const auto& algo = coll::recommended_algorithm(Collective::allreduce, 16, 65536);
  const harness::VerifiedRun v =
      r.run_verified(Collective::allreduce, algo, 16, 65536, 1);
  EXPECT_FALSE(v.ok);
}

TEST(FaultInject, InjectionIsThreadCountInvariant) {
  auto spec = make_spec();
  spec->seed = 5;
  spec->drop_fraction = 0.05;
  harness::Runner r(profile_with(spec));
  const auto& algo = coll::recommended_algorithm(Collective::allreduce, 16, 262144);
  const harness::VerifiedRun v1 =
      r.run_verified(Collective::allreduce, algo, 16, 262144, 1);
  const harness::VerifiedRun v4 =
      r.run_verified(Collective::allreduce, algo, 16, 262144, 4);
  // The (step, delivery) hash decides injection, not scheduling: both thread
  // counts see the same faults and reach the same verdict.
  EXPECT_EQ(v1.ok, v4.ok);
  EXPECT_EQ(v1.error, v4.error);
}

// --- self-healing sweeps ----------------------------------------------------

namespace {

exp::SweepPlan failing_plan(std::atomic<int>* attempts, int fail_nodes) {
  exp::SweepPlan plan;
  plan.name = "fault_isolation";
  plan.backend = exp::Backend::custom;
  plan.systems.emplace_back(net::lumi_profile());
  plan.colls = {Collective::allreduce};
  plan.series.push_back(exp::Series::best_of("probe", {}));
  plan.nodes.counts = {8, fail_nodes, 32};
  plan.sizes = {1024};
  plan.threads = 1;
  plan.metric = [attempts, fail_nodes](const exp::CellCtx& ctx) -> exp::Metrics {
    if (ctx.nodes == fail_nodes) {
      ++*attempts;
      throw std::runtime_error("injected permanent failure");
    }
    exp::Metrics m;
    m.value = static_cast<double>(ctx.nodes);
    return m;
  };
  return plan;
}

}  // namespace

TEST(FaultSweep, PropagateIsTheDefaultContract) {
  std::atomic<int> attempts{0};
  const exp::SweepPlan plan = failing_plan(&attempts, 16);
  EXPECT_EQ(plan.on_error, exp::SweepPlan::OnError::propagate);
  EXPECT_THROW((void)exp::run(plan), std::runtime_error);
  EXPECT_EQ(attempts.load(), 1);  // permanent: never retried
}

TEST(FaultSweep, IsolateYieldsPartialResultWithStructuredErrors) {
  std::atomic<int> attempts{0};
  exp::SweepPlan plan = failing_plan(&attempts, 16);
  plan.on_error = exp::SweepPlan::OnError::isolate;
  const exp::SweepResult res = exp::run(plan);

  ASSERT_EQ(res.errors.size(), 1u);
  EXPECT_EQ(res.errors[0].nodes, 16);
  EXPECT_EQ(res.errors[0].system, "lumi");
  EXPECT_EQ(res.errors[0].coll, Collective::allreduce);
  EXPECT_EQ(res.errors[0].attempts, 1);
  EXPECT_FALSE(res.errors[0].transient);
  EXPECT_NE(res.errors[0].message.find("injected permanent failure"),
            std::string::npos);

  // The healthy cells completed; the failed cell's rows are flagged.
  int failed_rows = 0, ok_rows = 0;
  for (const exp::Row& row : res.rows) {
    if (row.m.failed) {
      ++failed_rows;
      EXPECT_EQ(row.nodes, 16);
      EXPECT_FALSE(row.m.error.empty());
    } else {
      ++ok_rows;
      EXPECT_EQ(row.m.value, static_cast<double>(row.nodes));
    }
  }
  EXPECT_EQ(failed_rows, 1);
  EXPECT_EQ(ok_rows, 2);

  // The JSON carries both the flagged rows and the errors array.
  const std::string json = res.to_json();
  EXPECT_NE(json.find("\"failed\": true"), std::string::npos);
  EXPECT_NE(json.find("\"errors\": ["), std::string::npos);
  EXPECT_NE(json.find("injected permanent failure"), std::string::npos);
}

TEST(FaultSweep, TransientFailuresRetryDeterministically) {
  std::atomic<int> attempts{0};
  exp::SweepPlan plan;
  plan.name = "transient_retry";
  plan.backend = exp::Backend::custom;
  plan.systems.emplace_back(net::lumi_profile());
  plan.colls = {Collective::allreduce};
  plan.series.push_back(exp::Series::best_of("probe", {}));
  plan.nodes.counts = {8};
  plan.sizes = {1024};
  plan.threads = 1;
  plan.on_error = exp::SweepPlan::OnError::isolate;
  plan.transient_retries = 3;
  plan.metric = [&attempts](const exp::CellCtx&) -> exp::Metrics {
    if (++attempts <= 2) throw fault::TransientError("link flap");
    return {};
  };

  const exp::SweepResult res = exp::run(plan);
  EXPECT_TRUE(res.errors.empty());  // healed within the retry budget
  EXPECT_EQ(attempts.load(), 3);    // 2 flaps + 1 success

  // Exhausted budget: the error row records every attempt and the class.
  attempts = 0;
  plan.transient_retries = 1;
  plan.metric = [&attempts](const exp::CellCtx&) -> exp::Metrics {
    ++attempts;
    throw fault::TransientError("link flap");
  };
  const exp::SweepResult worn = exp::run(plan);
  ASSERT_EQ(worn.errors.size(), 1u);
  EXPECT_EQ(worn.errors[0].attempts, 2);  // initial try + 1 retry
  EXPECT_TRUE(worn.errors[0].transient);
  EXPECT_EQ(attempts.load(), 2);
}

// Retry accounting is deterministic across shard widths: with a doubling
// backoff configured, serial and 4-way sharded runs of the same
// always-transient plan record identical attempt counts, error rows and
// serialized JSON.
TEST(FaultSweep, RetryAccountingIsShardInvariant) {
  std::string reference_json;
  std::vector<i64> reference_attempts;
  for (const i64 threads : {i64{1}, i64{4}}) {
    std::atomic<int> calls{0};
    exp::SweepPlan plan;
    plan.name = "retry_determinism";
    plan.backend = exp::Backend::custom;
    plan.systems.emplace_back(net::lumi_profile());
    plan.colls = {Collective::allreduce};
    plan.series.push_back(exp::Series::best_of("probe", {}));
    plan.nodes.counts = {8, 16, 32};
    plan.sizes = {1024};
    plan.threads = threads;
    plan.on_error = exp::SweepPlan::OnError::isolate;
    plan.transient_retries = 2;
    plan.retry_backoff_ms = 1;  // doubling backoff may not perturb accounting
    plan.metric = [&calls](const exp::CellCtx& ctx) -> exp::Metrics {
      ++calls;
      if (ctx.nodes != 8) throw fault::TransientError("flap");
      return {};
    };

    const exp::SweepResult res = exp::run(plan);
    ASSERT_EQ(res.errors.size(), 2u) << "threads=" << threads;
    std::vector<i64> attempts;
    for (const exp::CellError& e : res.errors) {
      EXPECT_TRUE(e.transient);
      attempts.push_back(e.attempts);
    }
    EXPECT_EQ(calls.load(), 1 + 2 * 3);  // 1 clean + 2 cells x (1 try + 2 retries)
    int failed_rows = 0;
    for (const exp::Row& row : res.rows)
      if (row.m.failed) ++failed_rows;
    EXPECT_EQ(failed_rows, 2);

    const std::string json = res.to_json();
    if (reference_json.empty()) {
      reference_json = json;
      reference_attempts = attempts;
    } else {
      EXPECT_EQ(json, reference_json) << "threads=" << threads;
      EXPECT_EQ(attempts, reference_attempts) << "threads=" << threads;
    }
  }
  EXPECT_EQ(reference_attempts, (std::vector<i64>{3, 3}));
}

// A clean isolate-mode run must serialize byte-identically to a propagate
// run: the fault machinery may not perturb fault-free output.
TEST(FaultSweep, CleanIsolateRunMatchesPropagateByteForByte) {
  exp::SweepPlan plan;
  plan.name = "clean";
  plan.systems.emplace_back(net::lumi_profile());
  plan.colls = {Collective::allreduce};
  plan.series.push_back(exp::Series::best_binomial());
  plan.nodes.counts = {8, 16};
  plan.sizes = {1024, 65536};
  plan.threads = 1;

  const std::string propagate_json = exp::run(plan).to_json();
  plan.on_error = exp::SweepPlan::OnError::isolate;
  plan.transient_retries = 2;
  const std::string isolate_json = exp::run(plan).to_json();
  EXPECT_EQ(propagate_json, isolate_json);
  EXPECT_EQ(propagate_json.find("\"errors\""), std::string::npos);
}

// --- fault-tolerant tuner builds --------------------------------------------

TEST(FaultTuner, BuildSurvivesFailedCellsWithReport) {
  // The degraded profile's 16-node cells die permanently: only one rank
  // survives. The healthy profile's cells must still be tuned.
  auto spec = make_spec();
  for (Rank i = 0; i < 15; ++i) spec->failed_ranks.push_back(i);
  net::SystemProfile broken = profile_with(std::move(spec));
  broken.name = "lumi_broken";

  tune::TunerOptions opts;
  opts.size_grid = {1024, 65536};
  opts.threads = 1;
  opts.tolerate_failed_cells = true;

  tune::BuildReport report;
  const tune::DecisionTable table =
      tune::Tuner(opts).build({net::lumi_profile(), broken},
                              {Collective::allreduce}, {16}, &report);
  EXPECT_EQ(report.cells, 1);
  EXPECT_EQ(report.failed_cells, 1);
  ASSERT_EQ(report.notes.size(), 1u);
  EXPECT_NE(report.notes[0].find("lumi_broken"), std::string::npos);
  EXPECT_NE(report.notes[0].find("excluded cell"), std::string::npos);
  EXPECT_NE(table.cell("lumi", Collective::allreduce, 16), nullptr);
  EXPECT_EQ(table.cell("lumi_broken", Collective::allreduce, 16), nullptr);

  // Default discipline: the same build propagates instead.
  opts.tolerate_failed_cells = false;
  EXPECT_THROW((void)tune::Tuner(opts).build({net::lumi_profile(), broken},
                                             {Collective::allreduce}, {16}),
               std::runtime_error);

  // All cells failing is never a usable table, tolerant or not.
  opts.tolerate_failed_cells = true;
  EXPECT_THROW(
      (void)tune::Tuner(opts).build({broken}, {Collective::allreduce}, {16}),
      std::runtime_error);
}

TEST(FaultTuner, ProfileFingerprintIsFaultAware) {
  const net::SystemProfile healthy = net::lumi_profile();
  const u64 base = tune::profile_fingerprint(healthy);

  // Trivial spec: fingerprint unchanged (fault-free identity).
  EXPECT_EQ(tune::profile_fingerprint(profile_with(make_spec())), base);

  auto spec = make_spec();
  spec->degrade_global = 0.5;
  EXPECT_NE(tune::profile_fingerprint(profile_with(spec)), base);
}

// --- crash-safe artifacts ---------------------------------------------------

TEST(FaultAtomic, UncommittedWriteLeavesTargetIntact) {
  const std::string path = "fault_atomic_test.json";
  fault::write_file_atomic(path, "original content\n");
  ASSERT_EQ(read_file(path), "original content\n");

  std::string temp;
  {
    // Simulated crash: write without commit, then destroy.
    fault::AtomicFile f(path);
    ASSERT_TRUE(static_cast<bool>(f));
    temp = f.temp_path();
    std::fputs("torn half-wri", f.handle());
  }
  EXPECT_EQ(read_file(path), "original content\n");  // target untouched
  EXPECT_FALSE(file_exists(temp));                   // temp discarded

  // Committed write atomically replaces.
  {
    fault::AtomicFile f(path);
    ASSERT_TRUE(static_cast<bool>(f));
    std::fputs("new content\n", f.handle());
    EXPECT_TRUE(f.commit());
    EXPECT_FALSE(file_exists(f.temp_path()));
  }
  EXPECT_EQ(read_file(path), "new content\n");
  std::remove(path.c_str());
}

TEST(FaultAtomic, OpenFailureIsFalsy) {
  fault::AtomicFile f("no_such_dir_xyz/artifact.json");
  EXPECT_FALSE(static_cast<bool>(f));
  EXPECT_EQ(f.handle(), nullptr);
  EXPECT_THROW(fault::write_file_atomic("no_such_dir_xyz/artifact.json", "x"),
               std::runtime_error);
}

TEST(FaultAtomic, DecisionTableSaveLoadRoundTrip) {
  tune::DecisionTable table;
  table.set_profile("lumi", 0x1234u);
  // A registered algorithm name, so the load path round-trips instead of
  // demoting an unknown one.
  const std::string algo =
      coll::recommended_algorithm(Collective::allreduce, 16, 1024).name;
  table.set_cell(tune::CellKey{"lumi", Collective::allreduce, 16},
                 {{0, tune::kNoUpperBound, algo}});
  const std::string path = "fault_table_roundtrip.json";
  table.save(path);
  EXPECT_EQ(tune::DecisionTable::load(path), table);

  // load_or_quarantine on the good file: same table, no quarantine.
  tune::LoadReport rep;
  const auto loaded = tune::DecisionTable::load_or_quarantine(path, &rep);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, table);
  EXPECT_FALSE(file_exists(path + ".corrupt"));
  std::remove(path.c_str());
}

TEST(FaultAtomic, CorruptTableIsQuarantinedOnLoad) {
  const std::string path = "fault_table_corrupt.json";
  fault::write_file_atomic(path, "{\"format\": \"bine-decision-table\", tor");

  tune::LoadReport rep;
  const auto loaded = tune::DecisionTable::load_or_quarantine(path, &rep);
  EXPECT_FALSE(loaded.has_value());
  EXPECT_FALSE(file_exists(path));                 // damage moved aside...
  EXPECT_TRUE(file_exists(path + ".corrupt"));     // ...not deleted: evidence
  ASSERT_FALSE(rep.notes.empty());
  EXPECT_NE(rep.notes.back().find("quarantined"), std::string::npos);

  // Hard load still throws (the strict path is unchanged).
  EXPECT_THROW((void)tune::DecisionTable::load(path), std::runtime_error);

  // Missing file: nullopt with a note, nothing quarantined.
  tune::LoadReport rep2;
  const auto missing =
      tune::DecisionTable::load_or_quarantine("absent_table.json", &rep2);
  EXPECT_FALSE(missing.has_value());
  ASSERT_FALSE(rep2.notes.empty());
  EXPECT_NE(rep2.notes.back().find("no decision table"), std::string::npos);
  EXPECT_FALSE(file_exists("absent_table.json.corrupt"));
  std::remove((path + ".corrupt").c_str());
}

// --- env spec ---------------------------------------------------------------

TEST(FaultEnv, RunnerPicksUpSpecFromEnvironment) {
  setenv("BINE_FAULT_SPEC", "seed=7,degrade_global=0.5", 1);
  harness::Runner r(net::lumi_profile());
  unsetenv("BINE_FAULT_SPEC");
  ASSERT_NE(r.fault_spec(), nullptr);
  EXPECT_EQ(r.fault_spec()->seed, 7u);
  EXPECT_DOUBLE_EQ(r.fault_spec()->degrade_global, 0.5);

  // A trivial env spec is dropped exactly like a trivial profile spec.
  setenv("BINE_FAULT_SPEC", "seed=9,degrade_global=1.0", 1);
  harness::Runner r2(net::lumi_profile());
  unsetenv("BINE_FAULT_SPEC");
  EXPECT_EQ(r2.fault_spec(), nullptr);

  // The profile's own spec wins over the environment.
  setenv("BINE_FAULT_SPEC", "seed=7,degrade_global=0.5", 1);
  auto spec = make_spec();
  spec->degrade_local = 0.75;
  harness::Runner r3(profile_with(spec));
  unsetenv("BINE_FAULT_SPEC");
  ASSERT_NE(r3.fault_spec(), nullptr);
  EXPECT_DOUBLE_EQ(r3.fault_spec()->degrade_local, 0.75);
  EXPECT_DOUBLE_EQ(r3.fault_spec()->degrade_global, 1.0);
}

// --- parallel_for regression ------------------------------------------------

// The sweep layers' isolation guarantees sit on parallel_for's exception
// contract: exactly one failure propagates, workers stop taking new work,
// and the serial path behaves identically.
TEST(FaultParallelFor, ExceptionContract) {
  // Serial path (threads=1) propagates too.
  EXPECT_THROW(
      harness::parallel_for(8, [](i64 i) {
        if (i == 3) throw std::runtime_error("serial boom");
      }, 1),
      std::runtime_error);

  // Every index throwing concurrently: exactly one exception surfaces, the
  // rest are swallowed without crashing or deadlocking.
  std::atomic<int> thrown{0};
  try {
    harness::parallel_for(
        128,
        [&](i64 i) {
          ++thrown;
          throw std::runtime_error("boom " + std::to_string(i));
        },
        8);
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
  }
  EXPECT_GE(thrown.load(), 1);

  // Non-std payloads propagate as-is.
  EXPECT_THROW(harness::parallel_for(4, [](i64) { throw 42; }, 2), int);

  // After a failure the pool stops handing out work: far fewer than n
  // indices run when the first one throws immediately.
  std::atomic<int> ran{0};
  try {
    harness::parallel_for(
        1 << 20,
        [&](i64) {
          ++ran;
          throw std::runtime_error("early");
        },
        4);
  } catch (const std::runtime_error&) {
  }
  EXPECT_LT(ran.load(), 1 << 20);
}
