#include "core/butterfly.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/block_perm.hpp"
#include "core/modular.hpp"
#include "core/nu.hpp"
#include "core/tree.hpp"

namespace bc = bine::core;
using bc::ButterflyVariant;
using bine::i64;
using bine::Rank;
using bine::u64;

// --- Paper worked examples ----------------------------------------------------

TEST(BineButterfly, DhStepDistancesFor8Ranks) {
  // Eq. 4 with s=3: distances (1-(-2)^3)/3 = 3, then -1, then 1.
  EXPECT_EQ(bc::butterfly_partner(ButterflyVariant::bine_dh, 0, 0, 8), 3);
  EXPECT_EQ(bc::butterfly_partner(ButterflyVariant::bine_dh, 0, 1, 8), 7);
  EXPECT_EQ(bc::butterfly_partner(ButterflyVariant::bine_dh, 0, 2, 8), 1);
}

TEST(BineButterfly, DdRootSequenceFor8Ranks) {
  // Eq. 5: rank 0 meets 1 (step 0), -1=7 (step 1), 3 (step 2).
  EXPECT_EQ(bc::butterfly_partner(ButterflyVariant::bine_dd, 0, 0, 8), 1);
  EXPECT_EQ(bc::butterfly_partner(ButterflyVariant::bine_dd, 0, 1, 8), 7);
  EXPECT_EQ(bc::butterfly_partner(ButterflyVariant::bine_dd, 0, 2, 8), 3);
}

TEST(StandardButterfly, RecursiveDoublingAndHalving) {
  EXPECT_EQ(bc::butterfly_partner(ButterflyVariant::recursive_doubling, 0, 0, 8), 1);
  EXPECT_EQ(bc::butterfly_partner(ButterflyVariant::recursive_doubling, 0, 2, 8), 4);
  EXPECT_EQ(bc::butterfly_partner(ButterflyVariant::recursive_halving, 0, 0, 8), 4);
  EXPECT_EQ(bc::butterfly_partner(ButterflyVariant::recursive_halving, 0, 2, 8), 1);
}

// --- Matching / consistency properties -----------------------------------------

struct BflyCase {
  ButterflyVariant variant;
  i64 p;
};

class ButterflyMatching : public ::testing::TestWithParam<BflyCase> {};

TEST_P(ButterflyMatching, EveryStepIsAPerfectMatching) {
  const auto [variant, p] = GetParam();
  const int s = bine::log2_exact(p);
  for (int step = 0; step < s; ++step) {
    for (Rank r = 0; r < p; ++r) {
      const Rank q = bc::butterfly_partner(variant, r, step, p);
      ASSERT_GE(q, 0);
      ASSERT_LT(q, p);
      EXPECT_NE(q, r);
      EXPECT_EQ(bc::butterfly_partner(variant, q, step, p), r)
          << to_string(variant) << " p=" << p << " r=" << r << " step=" << step;
    }
  }
}

TEST_P(ButterflyMatching, FullPatternConnectsAllRanks) {
  // After s steps, data starting at any rank can have reached every rank:
  // the union of matchings forms a connected hypercube-like graph.
  const auto [variant, p] = GetParam();
  const int s = bine::log2_exact(p);
  std::vector<char> reached(static_cast<size_t>(p), 0);
  reached[0] = 1;
  for (int step = 0; step < s; ++step) {
    std::vector<char> next = reached;
    for (Rank r = 0; r < p; ++r)
      if (reached[static_cast<size_t>(r)])
        next[static_cast<size_t>(bc::butterfly_partner(variant, r, step, p))] = 1;
    reached = std::move(next);
  }
  for (Rank r = 0; r < p; ++r) EXPECT_TRUE(reached[static_cast<size_t>(r)]) << r;
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, ButterflyMatching,
    ::testing::Values(BflyCase{ButterflyVariant::recursive_doubling, 16},
                      BflyCase{ButterflyVariant::recursive_doubling, 256},
                      BflyCase{ButterflyVariant::recursive_halving, 16},
                      BflyCase{ButterflyVariant::recursive_halving, 256},
                      BflyCase{ButterflyVariant::bine_dh, 2},
                      BflyCase{ButterflyVariant::bine_dh, 16},
                      BflyCase{ButterflyVariant::bine_dh, 256},
                      BflyCase{ButterflyVariant::bine_dh, 1024},
                      BflyCase{ButterflyVariant::bine_dd, 2},
                      BflyCase{ButterflyVariant::bine_dd, 16},
                      BflyCase{ButterflyVariant::bine_dd, 256},
                      BflyCase{ButterflyVariant::bine_dd, 1024},
                      BflyCase{ButterflyVariant::swing, 64}),
    [](const ::testing::TestParamInfo<BflyCase>& ti) {
      return std::string(to_string(ti.param.variant)) + "_p" + std::to_string(ti.param.p);
    });

TEST(ButterflyTreeConsistency, DhTreeEdgesFollowEq4) {
  // The distance-halving Bine tree rooted at 0 is embedded in the
  // distance-halving Bine butterfly (Sec. 3.1): every tree send at step i
  // uses the Eq. 4 partner.
  for (const i64 p : {4, 8, 16, 64, 256}) {
    const int s = bine::log2_exact(p);
    for (Rank r = 0; r < p; ++r) {
      const int joined = bc::join_step(bc::TreeVariant::bine_dh, r, p);
      for (int step = joined + 1; step < s; ++step) {
        EXPECT_EQ(bc::tree_partner(bc::TreeVariant::bine_dh, r, step, p),
                  bc::butterfly_partner(ButterflyVariant::bine_dh, r, step, p))
            << "p=" << p << " r=" << r << " step=" << step;
      }
    }
  }
}

TEST(ButterflyTreeConsistency, DdTreeEdgesSatisfyNuRelation) {
  // Sec. 3.2.2: tree partner q of r at step j satisfies nu(q) = nu(r) ^ 2^j.
  for (const i64 p : {4, 8, 16, 64, 256}) {
    const int s = bine::log2_exact(p);
    for (Rank r = 0; r < p; ++r) {
      const int joined = bc::join_step(bc::TreeVariant::bine_dd, r, p);
      for (int step = joined + 1; step < s; ++step) {
        const Rank q = bc::tree_partner(bc::TreeVariant::bine_dd, r, step, p);
        EXPECT_EQ(bc::nu(q, p), bc::nu(r, p) ^ (u64{1} << step))
            << "p=" << p << " r=" << r << " step=" << step;
      }
    }
  }
}

TEST(ButterflyTreeConsistency, SwingSharesBineDdPeers) {
  // Sec. 4.4: Bine's large-vector pattern is "similar to the Swing
  // algorithm"; in our model they share the exact peer schedule and differ in
  // data layout only.
  for (const i64 p : {8, 64, 512}) {
    const int s = bine::log2_exact(p);
    for (Rank r = 0; r < p; ++r)
      for (int step = 0; step < s; ++step)
        EXPECT_EQ(bc::butterfly_partner(ButterflyVariant::swing, r, step, p),
                  bc::butterfly_partner(ButterflyVariant::bine_dd, r, step, p));
  }
}

TEST(ButterflyLocality, BineDhShortensDistancesVsRecursiveHalving) {
  // Aggregate modular distance over all (rank, step) pairs must be lower for
  // the Bine butterfly -- the mechanism behind the 33% traffic cut.
  for (const i64 p : {16, 64, 256, 1024}) {
    const int s = bine::log2_exact(p);
    i64 bine_total = 0, std_total = 0;
    for (Rank r = 0; r < p; ++r)
      for (int step = 0; step < s; ++step) {
        bine_total += bc::modular_distance(
            r, bc::butterfly_partner(ButterflyVariant::bine_dh, r, step, p), p);
        std_total += bc::modular_distance(
            r, bc::butterfly_partner(ButterflyVariant::recursive_halving, r, step, p), p);
      }
    EXPECT_LT(bine_total, std_total) << "p=" << p;
    // Expect roughly the 2/3 ratio of Eq. 2.
    const double ratio = static_cast<double>(bine_total) / static_cast<double>(std_total);
    EXPECT_NEAR(ratio, 2.0 / 3.0, 0.08) << "p=" << p;
  }
}

// --- Block permutation (Fig. 8) -------------------------------------------------

TEST(BlockPermutation, Fig8Row) {
  // Fig. 8: dest positions (reverse(nu(i))) = 000 100 110 001 011 111 101 010.
  const i64 expected[8] = {0, 4, 6, 1, 3, 7, 5, 2};
  for (i64 i = 0; i < 8; ++i) EXPECT_EQ(bc::permuted_position(i, 8), expected[i]) << i;
}

TEST(BlockPermutation, IsBijectionAndInverse) {
  for (const i64 p : {2, 4, 8, 16, 64, 256, 1024}) {
    const auto perm = bc::contiguity_permutation(p);
    const auto inv = bc::inverse_contiguity_permutation(p);
    std::vector<int> seen(static_cast<size_t>(p), 0);
    for (i64 i = 0; i < p; ++i) {
      seen[static_cast<size_t>(perm[static_cast<size_t>(i)])]++;
      EXPECT_EQ(inv[static_cast<size_t>(perm[static_cast<size_t>(i)])], i);
    }
    for (i64 i = 0; i < p; ++i) EXPECT_EQ(seen[static_cast<size_t>(i)], 1);
  }
}

TEST(BlockPermutation, MakesDdSubtreeBlocksContiguous) {
  // The whole point of Fig. 8: blocks of any bine_dd subtree land in a
  // contiguous region after the permutation.
  for (const i64 p : {8, 16, 32, 64, 128}) {
    for (Rank r = 1; r < p; ++r) {
      std::vector<i64> dests;
      for (const Rank m : bc::dd_subtree_members(r, p))
        dests.push_back(bc::permuted_position(m, p));
      std::sort(dests.begin(), dests.end());
      for (size_t k = 1; k < dests.size(); ++k)
        EXPECT_EQ(dests[k], dests[k - 1] + 1) << "p=" << p << " subtree root " << r;
    }
  }
}

TEST(BlockPermutation, PaperSendExample) {
  // Sec. 4.3.1 "Send": rank 1 ships its block to reverse(nu(1)) = 4.
  EXPECT_EQ(bc::send_strategy_peer(1, 8), 4);
}

TEST(BlockPermutation, Fig8Step0BlocksOfRank0) {
  // At step 0 of the 8-rank reduce-scatter, rank 0 sends all blocks whose nu
  // has LSB 1: blocks 1, 2, 5, 6; after permutation they occupy positions 4-7.
  std::vector<i64> dests;
  for (const i64 b : {1, 2, 5, 6}) dests.push_back(bc::permuted_position(b, 8));
  std::sort(dests.begin(), dests.end());
  EXPECT_EQ(dests, (std::vector<i64>{4, 5, 6, 7}));
}
