#include "core/tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "core/distance_theory.hpp"

namespace bc = bine::core;
using bc::TreeVariant;
using bine::i64;
using bine::Rank;

// --- Paper worked examples ---------------------------------------------------

TEST(BineDhTree, Rank8JoinsAtStep1For16Ranks) {
  // Fig. 4 A: rank2nb(8) = 1000, u = 3, i = s - u = 4 - 3 = 1.
  EXPECT_EQ(bc::join_step(TreeVariant::bine_dh, 8, 16), 1);
}

TEST(BineDhTree, Rank8SendsToRank7AtStep2For16Ranks) {
  // Fig. 4 B: at step i = 2, rank 8 (1000) sends to rank 7 (1011).
  EXPECT_EQ(bc::tree_partner(TreeVariant::bine_dh, 8, 2, 16), 7);
}

TEST(BineDhTree, RootPathToRank4Via3) {
  // Sec. 2.3.2: rank 4 receives via 0 -> 3 -> 4 (0000 ^ 0111 ^ 0011).
  EXPECT_EQ(bc::tree_partner(TreeVariant::bine_dh, 0, 0, 8), 3);
  EXPECT_EQ(bc::join_step(TreeVariant::bine_dh, 3, 8), 0);
  EXPECT_EQ(bc::tree_partner(TreeVariant::bine_dh, 3, 1, 8), 4);
  EXPECT_EQ(bc::join_step(TreeVariant::bine_dh, 4, 8), 1);
}

TEST(BineDhTree, EightRankEdgesMatchHandDerivation) {
  // p=8 edges by step: s0: 0->3; s1: 0->7, 3->4; s2: 0->1, 3->2, 7->6, 4->5.
  EXPECT_EQ(bc::tree_partner(TreeVariant::bine_dh, 0, 1, 8), 7);
  EXPECT_EQ(bc::tree_partner(TreeVariant::bine_dh, 0, 2, 8), 1);
  EXPECT_EQ(bc::tree_partner(TreeVariant::bine_dh, 3, 2, 8), 2);
  EXPECT_EQ(bc::tree_partner(TreeVariant::bine_dh, 7, 2, 8), 6);
  EXPECT_EQ(bc::tree_partner(TreeVariant::bine_dh, 4, 2, 8), 5);
}

TEST(BineDdTree, PaperSec322Example) {
  // Rank 2 receives at step 1 (nu(2) = 011); at step 2 sends to rank 5
  // (nu = 011 ^ 100 = 111).
  EXPECT_EQ(bc::join_step(TreeVariant::bine_dd, 2, 8), 1);
  EXPECT_EQ(bc::tree_partner(TreeVariant::bine_dd, 2, 2, 8), 5);
}

TEST(BineDdTree, RootChildrenAre1_7_3For8Ranks) {
  EXPECT_EQ(bc::tree_partner(TreeVariant::bine_dd, 0, 0, 8), 1);
  EXPECT_EQ(bc::tree_partner(TreeVariant::bine_dd, 0, 1, 8), 7);
  EXPECT_EQ(bc::tree_partner(TreeVariant::bine_dd, 0, 2, 8), 3);
}

TEST(BinomialTrees, Fig1FirstSends) {
  // Distance-doubling (Open MPI): rank 0 sends to 1, then 2, then 4.
  EXPECT_EQ(bc::tree_partner(TreeVariant::binomial_dd, 0, 0, 8), 1);
  EXPECT_EQ(bc::tree_partner(TreeVariant::binomial_dd, 0, 1, 8), 2);
  EXPECT_EQ(bc::tree_partner(TreeVariant::binomial_dd, 0, 2, 8), 4);
  // Distance-halving (MPICH): rank 0 sends to 4, then 2, then 1.
  EXPECT_EQ(bc::tree_partner(TreeVariant::binomial_dh, 0, 0, 8), 4);
  EXPECT_EQ(bc::tree_partner(TreeVariant::binomial_dh, 0, 1, 8), 2);
  EXPECT_EQ(bc::tree_partner(TreeVariant::binomial_dh, 0, 2, 8), 1);
}

TEST(BinomialTrees, RootToRootDistances) {
  // Fig. 2 D/E: binomial order-2 roots at distance 2; order-3 roots at 4.
  EXPECT_EQ(bc::step_distance(TreeVariant::binomial_dh, 0, 0, 4), 2);
  EXPECT_EQ(bc::step_distance(TreeVariant::binomial_dh, 0, 0, 8), 4);
  // Fig. 3: Bine order-2 roots at modulo distance 1; order-3 roots at 3.
  EXPECT_EQ(bc::step_distance(TreeVariant::bine_dh, 0, 0, 4), 1);
  EXPECT_EQ(bc::step_distance(TreeVariant::bine_dh, 0, 0, 8), 3);
}

// --- Structural properties over all variants and sizes -----------------------

struct TreeCase {
  TreeVariant variant;
  i64 p;
  Rank root;
};

class TreeStructure : public ::testing::TestWithParam<TreeCase> {};

TEST_P(TreeStructure, IsSpanningWithUniqueJoinSteps) {
  const auto [variant, p, root] = GetParam();
  const bc::Tree t = bc::build_tree(variant, p, root);
  const int s = bine::log2_exact(p);

  EXPECT_EQ(t.parent[static_cast<size_t>(root)], -1);
  EXPECT_EQ(t.joined_at[static_cast<size_t>(root)], -1);

  // Every non-root rank has a parent and a valid join step; following parents
  // reaches the root with strictly decreasing join steps.
  for (Rank r = 0; r < p; ++r) {
    if (r == root) continue;
    const int joined = t.joined_at[static_cast<size_t>(r)];
    ASSERT_GE(joined, 0) << "rank " << r;
    ASSERT_LT(joined, s);
    Rank cur = r;
    int guard = 0;
    while (cur != root) {
      const Rank par = t.parent[static_cast<size_t>(cur)];
      ASSERT_GE(par, 0);
      if (par != root) {
        EXPECT_LT(t.joined_at[static_cast<size_t>(par)], t.joined_at[static_cast<size_t>(cur)]);
      }
      cur = par;
      ASSERT_LE(++guard, s) << "path longer than tree depth";
    }
  }

  // Exactly 2^i ranks hold the data after step i (doubling property).
  for (int step = 0; step < s; ++step) {
    const i64 holders = std::count_if(t.joined_at.begin(), t.joined_at.end(),
                                      [&](int j) { return j <= step; });
    EXPECT_EQ(holders, i64{1} << (step + 1)) << "step " << step;
  }
}

TEST_P(TreeStructure, PartnerIsInvolution) {
  const auto [variant, p, root] = GetParam();
  (void)root;
  const int s = bine::log2_exact(p);
  for (Rank r = 0; r < p; ++r)
    for (int step = 0; step < s; ++step) {
      const Rank q = bc::tree_partner(variant, r, step, p);
      EXPECT_EQ(bc::tree_partner(variant, q, step, p), r)
          << to_string(variant) << " r=" << r << " step=" << step;
    }
}

TEST_P(TreeStructure, ChildrenJoinAtTheirStep) {
  const auto [variant, p, root] = GetParam();
  (void)root;
  const int s = bine::log2_exact(p);
  for (Rank r = 0; r < p; ++r) {
    const int joined = bc::join_step(variant, r, p);
    for (int step = joined + 1; step < s; ++step) {
      const Rank child = bc::tree_partner(variant, r, step, p);
      EXPECT_EQ(bc::join_step(variant, child, p), step);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, TreeStructure,
    ::testing::Values(TreeCase{TreeVariant::binomial_dd, 2, 0},
                      TreeCase{TreeVariant::binomial_dd, 16, 0},
                      TreeCase{TreeVariant::binomial_dd, 64, 5},
                      TreeCase{TreeVariant::binomial_dd, 256, 0},
                      TreeCase{TreeVariant::binomial_dh, 2, 0},
                      TreeCase{TreeVariant::binomial_dh, 16, 0},
                      TreeCase{TreeVariant::binomial_dh, 64, 63},
                      TreeCase{TreeVariant::binomial_dh, 256, 0},
                      TreeCase{TreeVariant::bine_dh, 2, 0},
                      TreeCase{TreeVariant::bine_dh, 8, 0},
                      TreeCase{TreeVariant::bine_dh, 16, 0},
                      TreeCase{TreeVariant::bine_dh, 64, 17},
                      TreeCase{TreeVariant::bine_dh, 256, 0},
                      TreeCase{TreeVariant::bine_dh, 1024, 0},
                      TreeCase{TreeVariant::bine_dd, 2, 0},
                      TreeCase{TreeVariant::bine_dd, 8, 0},
                      TreeCase{TreeVariant::bine_dd, 16, 0},
                      TreeCase{TreeVariant::bine_dd, 64, 40},
                      TreeCase{TreeVariant::bine_dd, 256, 0},
                      TreeCase{TreeVariant::bine_dd, 1024, 0}),
    [](const ::testing::TestParamInfo<TreeCase>& ti) {
      return std::string(to_string(ti.param.variant)) + "_p" +
             std::to_string(ti.param.p) + "_root" + std::to_string(ti.param.root);
    });

// --- Subtree structure --------------------------------------------------------

TEST(Subtrees, ContiguousVariantsMatchRecursiveMembership) {
  // Note: binomial_dd subtrees are strided ({1,3,5,7} for rank 1 on p=8), so
  // only the distance-halving variants have circular-interval subtrees.
  for (const TreeVariant v : {TreeVariant::binomial_dh, TreeVariant::bine_dh}) {
    for (const i64 p : {2, 4, 8, 16, 32, 64, 128}) {
      const bc::Tree t = bc::build_tree(v, p, 0);
      for (Rank r = 0; r < p; ++r) {
        const bc::CircularInterval iv = bc::subtree_interval(v, r, p);
        // Collect true membership by walking the materialized tree.
        std::set<Rank> members;
        std::vector<Rank> stack{r};
        while (!stack.empty()) {
          const Rank cur = stack.back();
          stack.pop_back();
          members.insert(cur);
          for (const auto& [step, child] : t.children[static_cast<size_t>(cur)])
            stack.push_back(child);
        }
        EXPECT_EQ(static_cast<i64>(members.size()), iv.length)
            << to_string(v) << " p=" << p << " r=" << r;
        for (const Rank m : members)
          EXPECT_TRUE(iv.contains(m, p)) << to_string(v) << " p=" << p << " r=" << r;
      }
    }
  }
}

TEST(Subtrees, DdSubtreeMatchesNuPredicate) {
  for (const i64 p : {2, 4, 8, 16, 32, 64, 128, 256}) {
    for (Rank r = 0; r < p; ++r) {
      const std::vector<Rank> members = bc::dd_subtree_members(r, p);
      std::set<Rank> set(members.begin(), members.end());
      EXPECT_EQ(set.size(), members.size()) << "duplicates in subtree";
      for (Rank q = 0; q < p; ++q) {
        EXPECT_EQ(set.count(q) == 1, bc::dd_subtree_contains(r, q, p))
            << "p=" << p << " r=" << r << " q=" << q;
      }
    }
  }
}

TEST(Subtrees, PaperSec323Example) {
  // Rank 8 in a 16-node bine_dh tree joins at step 1; its subtree shares the
  // two most significant negabinary bits (10xx): ranks with nb in
  // {1000, 1001, 1010, 1011} = ranks 8, 9, 6, 7.
  const bc::CircularInterval iv = bc::subtree_interval(TreeVariant::bine_dh, 8, 16);
  EXPECT_EQ(iv.length, 4);
  for (const Rank r : {6, 7, 8, 9}) EXPECT_TRUE(iv.contains(r, 16)) << r;
}

TEST(Subtrees, DdSubtreeOfRank1For8RanksIs1256) {
  // Sec. 3.2.3: descendants of rank 1 are the ranks whose nu has LSB set:
  // ranks 1 (001), 2 (011), 5 (111), 6 (101).
  std::vector<Rank> members = bc::dd_subtree_members(1, 8);
  std::sort(members.begin(), members.end());
  EXPECT_EQ(members, (std::vector<Rank>{1, 2, 5, 6}));
}

// --- Distance theory (Sec. 2.4.1) ---------------------------------------------

TEST(DistanceTheory, StepDistancesMatchClosedForms) {
  for (const i64 p : {4, 8, 16, 32, 64, 128, 256, 1024}) {
    const int s = bine::log2_exact(p);
    for (int step = 0; step < s; ++step) {
      EXPECT_EQ(bc::step_distance(TreeVariant::binomial_dh, 0, step, p),
                bc::delta_binomial(step, s));
      EXPECT_EQ(bc::step_distance(TreeVariant::bine_dh, 0, step, p),
                bc::delta_bine(step, s));
    }
  }
}

TEST(DistanceTheory, RatioApproachesTwoThirds) {
  // Eq. 2: delta_bine / delta_binomial -> 2/3. Because distances "differ by
  // at most +-1 from the ideal halving" (footnote 3), the per-step ratio
  // oscillates within [1/2, 1] and converges to 2/3 as the distance grows.
  for (int s = 2; s <= 20; ++s)
    for (int step = 0; step < s; ++step) {
      const double ratio = bc::distance_ratio(step, s);
      EXPECT_GE(ratio, 0.5) << "s=" << s << " step=" << step;
      EXPECT_LE(ratio, 1.0) << "s=" << s << " step=" << step;
    }
  // Away from the last (distance-1) steps the ratio is ~2/3.
  EXPECT_NEAR(bc::distance_ratio(0, 20), 2.0 / 3.0, 1e-5);
  EXPECT_NEAR(bc::distance_ratio(5, 20), 2.0 / 3.0, 1e-3);
  for (int s = 8; s <= 20; ++s)
    EXPECT_NEAR(bc::distance_ratio(0, s), 2.0 / 3.0, 0.01) << "s=" << s;
}

TEST(DistanceTheory, BineNeverFartherThanBinomial) {
  for (int s = 2; s <= 24; ++s)
    for (int step = 0; step < s; ++step)
      EXPECT_LE(bc::delta_bine(step, s), bc::delta_binomial(step, s));
}
