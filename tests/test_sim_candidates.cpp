// Candidate-batched simulation parity: net::simulate_candidates must be
// bit-identical to looping net::simulate_sizes over the candidate pool --
// with or without a PairRouteMemo, cold or warm -- across the full algorithm
// registry, all four topology families, and ragged/non-pow2 rank counts.
// Runner-level, run_candidates must match run_sizes per candidate with the
// schedule cache on and off, stay bit-identical when concurrent Runners
// share the process-wide route memo, and fault-epoch memo scoping must never
// leak degraded rows into healthy runs. "Bit-identical" is literal: seconds
// compare by bit pattern, not tolerance.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "coll/registry.hpp"
#include "harness/runner.hpp"
#include "net/pair_route_memo.hpp"
#include "net/profiles.hpp"
#include "net/route_cache.hpp"
#include "net/simulate.hpp"
#include "net/topology.hpp"
#include "sched/schedule_cache.hpp"

using namespace bine;

namespace {

std::vector<std::unique_ptr<net::Topology>> four_families() {
  std::vector<std::unique_ptr<net::Topology>> topos;
  topos.push_back(std::make_unique<net::FatTree>(4, 8, 2, 25e9));
  topos.push_back(std::make_unique<net::Dragonfly>(4, 8, 2, 25e9, 25e9));
  topos.push_back(std::make_unique<net::Torus>(std::vector<i64>{4, 4, 2}, 6.8e9));
  topos.push_back(std::make_unique<net::MultiGpu>(8, 4, 150e9, 25e9));
  return topos;  // all 32 endpoints
}

/// Scrambles ranks over nodes so rank pair != node pair (multi-link routes).
net::Placement scrambled_placement(i64 p, i64 nodes) {
  net::Placement pl;
  pl.node_of_rank.resize(static_cast<size_t>(p));
  for (i64 r = 0; r < p; ++r)
    pl.node_of_rank[static_cast<size_t>(r)] = (r * 13 + 5) % nodes;  // 13 coprime
  return pl;
}

void expect_bitwise_eq(const net::SimResult& batched, const net::SimResult& oracle,
                       const std::string& what) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(batched.seconds),
            std::bit_cast<std::uint64_t>(oracle.seconds))
      << what << " seconds " << batched.seconds << " vs " << oracle.seconds;
  EXPECT_EQ(batched.traffic.local_bytes, oracle.traffic.local_bytes) << what;
  EXPECT_EQ(batched.traffic.global_bytes, oracle.traffic.global_bytes) << what;
  EXPECT_EQ(batched.traffic.intra_node_bytes, oracle.traffic.intra_node_bytes) << what;
  EXPECT_EQ(batched.traffic.messages, oracle.traffic.messages) << what;
  EXPECT_EQ(batched.steps, oracle.steps) << what;
}

/// Every size-independent size-free schedule of the collective's registry at
/// rank count p -- the pool a tuner/sweep cell batches. `own` keeps the
/// shared entries alive behind the raw candidate span.
struct Pool {
  std::vector<std::shared_ptr<const sched::SizeFreeSchedule>> own;
  std::vector<const sched::SizeFreeSchedule*> ptrs;
};

Pool registry_pool(sched::Collective coll, i64 p) {
  Pool pool;
  for (const auto& algo : coll::algorithms_for(coll)) {
    if (algo.pow2_only && !is_pow2(p)) continue;
    coll::Config cfg;
    cfg.p = p;
    cfg.elem_size = 4;
    cfg.elem_count = 4096;  // structure probe size; sizes vary per test
    auto sf = std::make_shared<const sched::SizeFreeSchedule>(
        sched::SizeFreeSchedule::from(algo.make(cfg)));
    if (!sf->size_independent) continue;  // demoted: no batched path
    pool.own.push_back(std::move(sf));
    pool.ptrs.push_back(pool.own.back().get());
  }
  return pool;
}

}  // namespace

// Full registry x 4 topology families x {ragged non-pow2, pow2} rank counts
// on a ragged size axis: one simulate_candidates call over the whole pool vs
// the per-candidate simulate_sizes loop it replaces -- three ways (no memo,
// cold memo, warm memo), all bit-identical. A null pool slot must yield an
// empty result row without disturbing its neighbours.
TEST(SimCandidates, BitIdenticalToPerCandidateSimulateSizes) {
  const net::CostParams cp;  // defaults: distinct alpha/seg/bw knobs
  const std::vector<i64> elem_counts = {8, 27, 64, 100, 512, 4096, 12345, 262144};
  net::PairRouteMemo memo;  // one instance across every topology: scope keying
  size_t checked = 0;
  for (const auto& topo : four_families()) {
    for (const i64 p : {i64{27}, i64{32}}) {  // ragged non-pow2 + pow2
      const net::Placement pl = scrambled_placement(p, topo->num_nodes());
      const net::RouteCache rc(*topo, pl);
      for (const sched::Collective coll : coll::all_collectives()) {
        Pool pool = registry_pool(coll, p);
        if (pool.ptrs.empty()) continue;
        // A dead slot mid-pool (an inapplicable candidate).
        pool.ptrs.insert(pool.ptrs.begin() + static_cast<std::ptrdiff_t>(pool.ptrs.size() / 2),
                         nullptr);
        const auto no_memo =
            net::simulate_candidates(pool.ptrs, elem_counts, 4, rc, cp, nullptr);
        const auto cold =
            net::simulate_candidates(pool.ptrs, elem_counts, 4, rc, cp, &memo);
        const auto warm =
            net::simulate_candidates(pool.ptrs, elem_counts, 4, rc, cp, &memo);
        ASSERT_EQ(no_memo.size(), pool.ptrs.size());
        ASSERT_EQ(cold.size(), pool.ptrs.size());
        ASSERT_EQ(warm.size(), pool.ptrs.size());
        for (size_t k = 0; k < pool.ptrs.size(); ++k) {
          if (pool.ptrs[k] == nullptr) {
            EXPECT_TRUE(no_memo[k].empty());
            EXPECT_TRUE(cold[k].empty());
            EXPECT_TRUE(warm[k].empty());
            continue;
          }
          const auto oracle =
              net::simulate_sizes(*pool.ptrs[k], elem_counts, 4, rc, cp);
          ASSERT_EQ(oracle.size(), elem_counts.size());
          const std::string what = topo->name() + "/" + to_string(coll) +
                                   " cand=" + std::to_string(k) +
                                   " p=" + std::to_string(p);
          for (size_t s = 0; s < elem_counts.size(); ++s) {
            expect_bitwise_eq(no_memo[k][s], oracle[s],
                              what + " n=" + std::to_string(elem_counts[s]) + " [no memo]");
            expect_bitwise_eq(cold[k][s], oracle[s],
                              what + " n=" + std::to_string(elem_counts[s]) + " [cold]");
            expect_bitwise_eq(warm[k][s], oracle[s],
                              what + " n=" + std::to_string(elem_counts[s]) + " [warm]");
          }
          ++checked;
        }
      }
    }
  }
  EXPECT_GT(checked, 100u);  // the registry sweep actually ran
  // One scope per (topology, placement): 4 families x 2 rank counts. The
  // warm pass must have been served from the memo.
  const auto stats = memo.stats();
  EXPECT_EQ(stats.scopes, 8u);
  EXPECT_GT(stats.misses, 0u);
  EXPECT_GT(stats.hits, stats.misses);  // warm pass re-reads every cold miss
  EXPECT_GT(stats.bytes, 0u);
}

// Runner-level parity: run_candidates vs a run_sizes loop over the same
// pool, schedule cache on and off (off exercises the per-candidate
// fallback), nullptr slots marking inapplicable candidates.
TEST(SimCandidates, RunnerRunCandidatesMatchesRunSizes) {
  const std::vector<i64> sizes = {64, 1024, 12345, 65536, 1 << 20};
  for (const bool cache_on : {true, false}) {
    harness::Runner runner(net::lumi_profile());
    runner.use_private_schedule_cache();
    runner.set_schedule_cache(cache_on);
    for (const sched::Collective coll : coll::all_collectives()) {
      std::vector<const coll::AlgorithmEntry*> algos;
      for (const auto& algo : coll::algorithms_for(coll)) {
        if (algo.specialized) continue;
        algos.push_back(runner.applicable(algo, 24) ? &algo : nullptr);
      }
      const auto batched = runner.run_candidates(coll, algos, 24, sizes);
      ASSERT_EQ(batched.size(), algos.size());
      for (size_t k = 0; k < algos.size(); ++k) {
        if (algos[k] == nullptr) {
          EXPECT_TRUE(batched[k].empty());
          continue;
        }
        const auto oracle = runner.run_sizes(coll, *algos[k], 24, sizes);
        ASSERT_EQ(batched[k].size(), oracle.size());
        for (size_t s = 0; s < sizes.size(); ++s) {
          EXPECT_EQ(std::bit_cast<std::uint64_t>(batched[k][s].seconds),
                    std::bit_cast<std::uint64_t>(oracle[s].seconds))
              << to_string(coll) << "/" << algos[k]->name << " size=" << sizes[s]
              << " cache=" << cache_on;
          EXPECT_EQ(batched[k][s].global_bytes, oracle[s].global_bytes);
          EXPECT_EQ(batched[k][s].total_bytes, oracle[s].total_bytes);
          EXPECT_EQ(batched[k][s].messages, oracle[s].messages);
          EXPECT_EQ(batched[k][s].steps, oracle[s].steps);
        }
      }
    }
  }
}

// Concurrent Runners hammering the SAME process-wide route memo -- worker
// counts {1, 4} -- must each reproduce the serial reference bit-for-bit.
// This is the memo's concurrency contract: slot numbering inside a scope is
// thread-schedule-dependent, results must never observe it.
TEST(SimCandidates, ConcurrentRunnersShareProcessMemoBitIdentically) {
  struct Cell {
    sched::Collective coll;
    i64 nodes;
  };
  std::vector<Cell> cells;
  for (const sched::Collective coll :
       {sched::Collective::allreduce, sched::Collective::bcast,
        sched::Collective::allgather})
    for (const i64 nodes : {i64{18}, i64{27}}) cells.push_back({coll, nodes});
  const std::vector<i64> sizes = {64, 4096, 65536};

  const auto pool_for = [](harness::Runner& r, const Cell& c) {
    std::vector<const coll::AlgorithmEntry*> algos;
    for (const auto& algo : coll::algorithms_for(c.coll)) {
      if (algo.specialized) continue;
      algos.push_back(r.applicable(algo, c.nodes) ? &algo : nullptr);
    }
    return algos;
  };

  // Serial reference.
  std::vector<std::vector<std::vector<harness::RunResult>>> expect;
  {
    harness::Runner ref(net::lumi_profile());
    ref.use_private_schedule_cache();
    for (const Cell& c : cells)
      expect.push_back(ref.run_candidates(c.coll, pool_for(ref, c), c.nodes, sizes));
  }

  for (const int threads : {1, 4}) {
    std::atomic<int> mismatches{0};
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t)
      workers.emplace_back([&] {
        harness::Runner runner(net::lumi_profile());
        runner.use_private_schedule_cache();
        for (size_t i = 0; i < cells.size(); ++i) {
          const auto got =
              runner.run_candidates(cells[i].coll, pool_for(runner, cells[i]),
                                    cells[i].nodes, sizes);
          if (got.size() != expect[i].size()) {
            mismatches.fetch_add(1);
            continue;
          }
          for (size_t k = 0; k < got.size(); ++k) {
            if (got[k].size() != expect[i][k].size()) {
              mismatches.fetch_add(1);
              continue;
            }
            for (size_t s = 0; s < got[k].size(); ++s)
              if (std::bit_cast<std::uint64_t>(got[k][s].seconds) !=
                      std::bit_cast<std::uint64_t>(expect[i][k][s].seconds) ||
                  got[k][s].total_bytes != expect[i][k][s].total_bytes ||
                  got[k][s].messages != expect[i][k][s].messages)
                mismatches.fetch_add(1);
          }
        }
      });
    for (auto& w : workers) w.join();
    EXPECT_EQ(mismatches.load(), 0) << "threads=" << threads;
  }
}

// Fault-epoch memo scoping: a degradation-only BINE_FAULT_SPEC Runner and a
// healthy Runner share the process memo, but their RouteCache signatures
// differ, so degraded rows live in their own scope. Healthy results after
// the faulted Runner ran must be bit-identical to the healthy reference
// taken before it -- the memo never contaminates across fault epochs.
TEST(SimCandidates, FaultEpochScopingNeverContaminatesHealthyRuns) {
  unsetenv("BINE_FAULT_SPEC");  // hygiene: an inherited CI spec would skew all runs
  const std::vector<i64> sizes = {256, 4096, 65536};
  const auto run_cell = [&](harness::Runner& r) {
    std::vector<const coll::AlgorithmEntry*> algos;
    for (const auto& algo : coll::algorithms_for(sched::Collective::allreduce)) {
      if (algo.specialized) continue;
      algos.push_back(r.applicable(algo, 24) ? &algo : nullptr);
    }
    return r.run_candidates(sched::Collective::allreduce, algos, 24, sizes);
  };

  harness::Runner healthy_before(net::lumi_profile());
  healthy_before.use_private_schedule_cache();
  const auto reference = run_cell(healthy_before);

  // Degradation-only spec: every rank survives, global links lose bandwidth.
  setenv("BINE_FAULT_SPEC", "seed=7,degrade_global=0.5", 1);
  harness::Runner faulted(net::lumi_profile());
  faulted.use_private_schedule_cache();
  ASSERT_NE(faulted.fault_spec(), nullptr);
  const auto degraded = run_cell(faulted);
  unsetenv("BINE_FAULT_SPEC");

  // The degraded machine must actually be different (else the scope-keying
  // claim below is vacuous)...
  bool any_diff = false;
  ASSERT_EQ(degraded.size(), reference.size());
  for (size_t k = 0; k < degraded.size() && !any_diff; ++k)
    for (size_t s = 0; s < degraded[k].size() && !any_diff; ++s)
      any_diff = std::bit_cast<std::uint64_t>(degraded[k][s].seconds) !=
                 std::bit_cast<std::uint64_t>(reference[k][s].seconds);
  EXPECT_TRUE(any_diff) << "degrade_global=0.5 changed nothing";

  // ...and a fresh healthy Runner, served from the (now warm, possibly
  // fault-adjacent) process memo, must reproduce the reference exactly.
  harness::Runner healthy_after(net::lumi_profile());
  healthy_after.use_private_schedule_cache();
  const auto replay = run_cell(healthy_after);
  ASSERT_EQ(replay.size(), reference.size());
  for (size_t k = 0; k < replay.size(); ++k) {
    ASSERT_EQ(replay[k].size(), reference[k].size());
    for (size_t s = 0; s < replay[k].size(); ++s) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(replay[k][s].seconds),
                std::bit_cast<std::uint64_t>(reference[k][s].seconds))
          << "cand=" << k << " size=" << sizes[s];
      EXPECT_EQ(replay[k][s].total_bytes, reference[k][s].total_bytes);
      EXPECT_EQ(replay[k][s].messages, reference[k][s].messages);
    }
  }
}

// Capacity-cap trim: one outsized cell (allgather/bruck at p=2048, whose
// p^2 pair-index table alone exceeds the 8 MiB arena cap) may pin its scratch
// while hot, but the next small cell on the same thread must release the
// spike. The big cell routes through a scoped RouteCache over exactly the
// schedule's send pairs, so the test never pays an eager 2048^2 route build.
TEST(SimCandidates, ScratchTrimReleasesOutsizedCell) {
  constexpr size_t kCapBytes = size_t{1} << 23;  // mirrors CandScratch::trim
  const net::CostParams cp;
  const std::vector<i64> elem_counts = {8, 27, 64, 100, 512, 4096, 12345, 262144};
  net::PairRouteMemo memo;

  net::Torus big_topo(std::vector<i64>{16, 16, 8}, 6.8e9);  // 2048 nodes
  const i64 p = big_topo.num_nodes();
  // The spike premise: the rank-pair interning table (p^2 x 4 B) overflows
  // the cap. If the cap ever grows, pick a bigger p.
  ASSERT_GT(static_cast<size_t>(p) * static_cast<size_t>(p) * sizeof(std::uint32_t),
            kCapBytes);
  const net::Placement big_pl = scrambled_placement(p, p);
  const auto& bruck = coll::find_algorithm(sched::Collective::allgather, "bruck");
  coll::Config cfg;
  cfg.p = p;
  cfg.elem_size = 4;
  cfg.elem_count = 4096;
  const auto big_sf = std::make_shared<const sched::SizeFreeSchedule>(
      sched::SizeFreeSchedule::from(bruck.make(cfg)));
  ASSERT_TRUE(big_sf->size_independent);
  std::vector<std::pair<Rank, Rank>> send_pairs;
  for (size_t i = 0; i < big_sf->num_ops(); ++i)
    if (big_sf->kind[i] == sched::OpKind::send)
      send_pairs.emplace_back(big_sf->rank[i], big_sf->peer[i]);
  const net::RouteCache big_rc(big_topo, big_pl, send_pairs);
  const sched::SizeFreeSchedule* big_pool[] = {big_sf.get()};
  const auto big_res =
      net::simulate_candidates(big_pool, elem_counts, 4, big_rc, cp, &memo);
  ASSERT_EQ(big_res.size(), 1u);
  ASSERT_EQ(big_res[0].size(), elem_counts.size());
  const size_t after_huge = net::candidate_scratch_resident_bytes();
  EXPECT_GT(after_huge, kCapBytes);  // hot scratch is kept while in use

  net::Torus small_topo(std::vector<i64>{4, 4, 2}, 6.8e9);
  const net::Placement small_pl = scrambled_placement(27, small_topo.num_nodes());
  const net::RouteCache small_rc(small_topo, small_pl);
  Pool small_pool = registry_pool(sched::Collective::allreduce, 27);
  ASSERT_FALSE(small_pool.ptrs.empty());
  (void)net::simulate_candidates(small_pool.ptrs, elem_counts, 4, small_rc, cp, &memo);
  const size_t after_small = net::candidate_scratch_resident_bytes();
  EXPECT_LT(after_small, kCapBytes);  // the outsized arenas were released
  EXPECT_LT(after_small, after_huge);
}
