#include "sched/schedule.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "sched/blocks.hpp"

namespace bs = bine::sched;
using bine::i64;
using bine::u64;

TEST(Blocks, OffsetsAndSizesPartitionTheVector) {
  for (const i64 n : {0, 1, 7, 16, 100, 1023}) {
    for (const i64 B : {1, 2, 3, 8, 16, 40}) {
      i64 total = 0;
      for (i64 b = 0; b < B; ++b) {
        EXPECT_EQ(bs::block_offset(b, n, B) + bs::block_elems(b, n, B),
                  bs::block_offset(b + 1, n, B));
        total += bs::block_elems(b, n, B);
        EXPECT_GE(bs::block_elems(b, n, B), n / B);
        EXPECT_LE(bs::block_elems(b, n, B), n / B + 1);
      }
      EXPECT_EQ(total, n);
      EXPECT_EQ(bs::block_offset(0, n, B), 0);
      EXPECT_EQ(bs::block_offset(B, n, B), n);
    }
  }
}

TEST(Blocks, BlockSetExpandAndCount) {
  bs::BlockSet set = bs::BlockSet::run(6, 4);  // wraps 6,7,0,1 in B=8
  EXPECT_EQ(set.block_count(), 4);
  EXPECT_EQ(set.expand(8), (std::vector<i64>{6, 7, 0, 1}));
  EXPECT_EQ(set.memory_segments(8), 2);  // wrapped run = two memory segments
  EXPECT_EQ(bs::BlockSet::run(2, 3).memory_segments(8), 1);
  EXPECT_EQ(bs::BlockSet::all(8).memory_segments(8), 1);
}

TEST(Blocks, ElemCountMatchesExpandedSum) {
  for (const i64 n : {13, 40, 111}) {
    const i64 B = 8;
    for (i64 start = 0; start < B; ++start)
      for (i64 count = 0; count <= B; ++count) {
        const bs::BlockSet set = bs::BlockSet::run(start, count);
        i64 manual = 0;
        for (const i64 b : set.expand(B)) manual += bs::block_elems(b, n, B);
        EXPECT_EQ(set.elem_count(n, B), manual) << "n=" << n << " run " << start << "+"
                                                << count;
      }
  }
}

TEST(Blocks, FromIdsCoalescesAndWraps) {
  bs::ScheduleArena arena;
  const bs::BlockSet a = bs::blockset_from_ids({3, 1, 2}, 8, arena);
  ASSERT_EQ(a.ranges().size(), 1u);
  EXPECT_EQ(a.ranges()[0].begin, 1);
  EXPECT_EQ(a.ranges()[0].count, 3);

  const bs::BlockSet b = bs::blockset_from_ids({7, 0, 3}, 8, arena);
  // 7 and 0 glue circularly; 3 stays apart.
  EXPECT_EQ(b.block_count(), 3);
  EXPECT_EQ(b.memory_segments(8), 3);  // {3} + wrapped {7,0} counted as 2

  const bs::BlockSet c = bs::blockset_from_ids({0, 1, 2, 3, 4, 5, 6, 7}, 8, arena);
  ASSERT_EQ(c.ranges().size(), 1u);
  EXPECT_EQ(c.ranges()[0].count, 8);
}

// Property: expand() -> blockset_from_ids() is an exact round trip -- same
// ids in canonical (sorted-run, circularly merged) order -- for random id
// subsets, including ones that wrap at B-1. This is the invariant the
// ScheduleCache's size resolution leans on: the canonical form determines
// elem_count for every vector length.
TEST(Blocks, FromIdsExpandRoundTripOnRandomSets) {
  bs::ScheduleArena arena;
  std::mt19937_64 rng(20250731);
  for (const i64 B : {1, 2, 3, 8, 16, 37, 64}) {
    for (int trial = 0; trial < 200; ++trial) {
      // Random non-empty subset of [0, B), biased to include the wrap pair
      // {B-1, 0} in about half the trials.
      std::vector<i64> ids;
      const bool force_wrap = B > 1 && (trial % 2 == 0);
      for (i64 b = 0; b < B; ++b)
        if (rng() % 3 == 0) ids.push_back(b);
      if (force_wrap) {
        for (const i64 must : {i64{0}, B - 1})
          if (std::find(ids.begin(), ids.end(), must) == ids.end()) ids.push_back(must);
        std::sort(ids.begin(), ids.end());
      }
      if (ids.empty()) ids.push_back(static_cast<i64>(rng() % static_cast<u64>(B)));

      const bs::BlockSet set = bs::blockset_from_ids(ids, B, arena);
      EXPECT_EQ(set.block_count(), static_cast<i64>(ids.size()));

      // Expanded ids are the input set (as a set).
      std::vector<i64> expanded = set.expand(B);
      std::vector<i64> expanded_sorted = expanded;
      std::sort(expanded_sorted.begin(), expanded_sorted.end());
      std::vector<i64> input_sorted = ids;
      std::sort(input_sorted.begin(), input_sorted.end());
      ASSERT_EQ(expanded_sorted, input_sorted) << "B=" << B << " trial=" << trial;

      // Round trip through expand() reproduces the identical canonical form.
      const bs::BlockSet again = bs::blockset_from_ids(expanded, B, arena);
      ASSERT_EQ(std::vector<bs::BlockRange>(again.ranges().begin(), again.ranges().end()),
                std::vector<bs::BlockRange>(set.ranges().begin(), set.ranges().end()))
          << "B=" << B << " trial=" << trial;

      // Canonical-form invariants: every range non-empty, no range both
      // starting at 0 and another ending at B (they must have merged), and a
      // wrapped range only ever appears once, at the back.
      i64 wrapped = 0;
      bool starts_at_zero = false, ends_at_B = false;
      for (const bs::BlockRange& r : set.ranges()) {
        EXPECT_GT(r.count, 0);
        EXPECT_LE(r.count, B);
        if (r.begin + r.count > B) ++wrapped;
        starts_at_zero |= r.begin == 0;
        if (r.begin + r.count == B) ends_at_B = true;
      }
      EXPECT_LE(wrapped, 1);
      if (set.ranges().size() > 1) {
        EXPECT_FALSE(starts_at_zero && ends_at_B && wrapped == 0);
      }

      // elem_count matches the per-block sum for a non-divisible vector.
      const i64 n = 7 * B + 3;
      i64 manual = 0;
      for (const i64 b : expanded) manual += bs::block_elems(b, n, B);
      EXPECT_EQ(set.elem_count(n, B), manual);

      // memory_segments: a wrapped range costs two segments unless it covers
      // the whole space (then the memory image is one contiguous run).
      i64 expect_segs = 0;
      for (const bs::BlockRange& r : set.ranges())
        expect_segs += (r.begin + r.count > B && r.count < B) ? 2 : 1;
      EXPECT_EQ(set.memory_segments(B), expect_segs);
    }
  }
}

TEST(Blocks, FullCircleWrappedRunIsOneMemorySegment) {
  // run(3, 8) in B=8 covers every block: the memory image is the whole
  // vector, i.e. one contiguous segment, not a split pair.
  EXPECT_EQ(bs::BlockSet::run(3, 8).memory_segments(8), 1);
  EXPECT_EQ(bs::BlockSet::run(3, 7).memory_segments(8), 2);
}

TEST(Blocks, ArenaSpansAreStableAcrossGrowth) {
  bs::ScheduleArena arena;
  // Force many chunk growths and verify previously returned sets never move.
  std::vector<bs::BlockSet> sets;
  std::vector<std::vector<i64>> expect;
  for (i64 t = 0; t < 2000; ++t) {
    const i64 B = 64;
    std::vector<i64> ids;
    for (i64 b = 0; b < B; b += 2 + (t % 5)) ids.push_back(b);
    expect.push_back(ids);
    sets.push_back(bs::blockset_from_ids(ids, B, arena));
  }
  for (size_t t = 0; t < sets.size(); ++t) {
    std::vector<i64> got = sets[t].expand(64);
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, expect[t]) << "set " << t;
  }
  // Chunked doubling: storage grows in O(log n) allocations, not O(n).
  EXPECT_LE(arena.chunk_count(), 16u);
}

TEST(Schedule, ValidateCatchesByteMismatch) {
  bs::Schedule s;
  s.coll = bs::Collective::bcast;
  s.p = 2;
  s.nblocks = 2;
  s.elem_count = 8;
  s.elem_size = 4;
  s.steps.assign(2, {});
  s.add_exchange(0, 0, 1, bs::BlockSet::all(2), false);
  EXPECT_EQ(s.validate(), "");
  s.steps[1][0].ops[0].bytes += 1;
  EXPECT_NE(s.validate(), "");
}

TEST(Schedule, TotalWireBytes) {
  bs::Schedule s;
  s.coll = bs::Collective::bcast;
  s.p = 4;
  s.nblocks = 4;
  s.elem_count = 16;  // 4 elems per block
  s.elem_size = 4;
  s.steps.assign(4, {});
  s.add_exchange(0, 0, 1, bs::BlockSet::all(4), false);   // 64 bytes
  s.add_exchange(1, 0, 2, bs::BlockSet::single(2), false);  // 16 bytes
  s.normalize_steps();
  EXPECT_EQ(s.total_wire_bytes(), 64 + 16);
}
