#include "sched/schedule.hpp"

#include <gtest/gtest.h>

#include "sched/blocks.hpp"

namespace bs = bine::sched;
using bine::i64;

TEST(Blocks, OffsetsAndSizesPartitionTheVector) {
  for (const i64 n : {0, 1, 7, 16, 100, 1023}) {
    for (const i64 B : {1, 2, 3, 8, 16, 40}) {
      i64 total = 0;
      for (i64 b = 0; b < B; ++b) {
        EXPECT_EQ(bs::block_offset(b, n, B) + bs::block_elems(b, n, B),
                  bs::block_offset(b + 1, n, B));
        total += bs::block_elems(b, n, B);
        EXPECT_GE(bs::block_elems(b, n, B), n / B);
        EXPECT_LE(bs::block_elems(b, n, B), n / B + 1);
      }
      EXPECT_EQ(total, n);
      EXPECT_EQ(bs::block_offset(0, n, B), 0);
      EXPECT_EQ(bs::block_offset(B, n, B), n);
    }
  }
}

TEST(Blocks, BlockSetExpandAndCount) {
  bs::BlockSet set = bs::BlockSet::run(6, 4);  // wraps 6,7,0,1 in B=8
  EXPECT_EQ(set.block_count(), 4);
  EXPECT_EQ(set.expand(8), (std::vector<i64>{6, 7, 0, 1}));
  EXPECT_EQ(set.memory_segments(8), 2);  // wrapped run = two memory segments
  EXPECT_EQ(bs::BlockSet::run(2, 3).memory_segments(8), 1);
  EXPECT_EQ(bs::BlockSet::all(8).memory_segments(8), 1);
}

TEST(Blocks, ElemCountMatchesExpandedSum) {
  for (const i64 n : {13, 40, 111}) {
    const i64 B = 8;
    for (i64 start = 0; start < B; ++start)
      for (i64 count = 0; count <= B; ++count) {
        const bs::BlockSet set = bs::BlockSet::run(start, count);
        i64 manual = 0;
        for (const i64 b : set.expand(B)) manual += bs::block_elems(b, n, B);
        EXPECT_EQ(set.elem_count(n, B), manual) << "n=" << n << " run " << start << "+"
                                                << count;
      }
  }
}

TEST(Blocks, FromIdsCoalescesAndWraps) {
  const bs::BlockSet a = bs::blockset_from_ids({3, 1, 2}, 8);
  ASSERT_EQ(a.ranges.size(), 1u);
  EXPECT_EQ(a.ranges[0].begin, 1);
  EXPECT_EQ(a.ranges[0].count, 3);

  const bs::BlockSet b = bs::blockset_from_ids({7, 0, 3}, 8);
  // 7 and 0 glue circularly; 3 stays apart.
  EXPECT_EQ(b.block_count(), 3);
  EXPECT_EQ(b.memory_segments(8), 3);  // {3} + wrapped {7,0} counted as 2

  const bs::BlockSet c = bs::blockset_from_ids({0, 1, 2, 3, 4, 5, 6, 7}, 8);
  ASSERT_EQ(c.ranges.size(), 1u);
  EXPECT_EQ(c.ranges[0].count, 8);
}

TEST(Schedule, ValidateCatchesByteMismatch) {
  bs::Schedule s;
  s.coll = bs::Collective::bcast;
  s.p = 2;
  s.nblocks = 2;
  s.elem_count = 8;
  s.elem_size = 4;
  s.steps.assign(2, {});
  s.add_exchange(0, 0, 1, bs::BlockSet::all(2), false);
  EXPECT_EQ(s.validate(), "");
  s.steps[1][0].ops[0].bytes += 1;
  EXPECT_NE(s.validate(), "");
}

TEST(Schedule, TotalWireBytes) {
  bs::Schedule s;
  s.coll = bs::Collective::bcast;
  s.p = 4;
  s.nblocks = 4;
  s.elem_count = 16;  // 4 elems per block
  s.elem_size = 4;
  s.steps.assign(4, {});
  s.add_exchange(0, 0, 1, bs::BlockSet::all(4), false);   // 64 bytes
  s.add_exchange(1, 0, 2, bs::BlockSet::single(2), false);  // 16 bytes
  s.normalize_steps();
  EXPECT_EQ(s.total_wire_bytes(), 64 + 16);
}
