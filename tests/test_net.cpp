// Network substrate tests: routing validity, link classification, exact
// traffic accounting (Fig. 1), cost-model monotonicity, and the allocation
// model's traffic-bound behaviour.
#include <gtest/gtest.h>

#include <memory>

#include "alloc/allocation.hpp"
#include "coll/registry.hpp"
#include "coll/tree_colls.hpp"
#include "core/tree.hpp"
#include "fault/fault.hpp"
#include "harness/runner.hpp"
#include "net/profiles.hpp"
#include "net/simulate.hpp"
#include "net/topology.hpp"

using namespace bine;

namespace {

void expect_routes_valid(const net::Topology& topo) {
  std::vector<i64> path;
  for (i64 s = 0; s < std::min<i64>(topo.num_nodes(), 40); ++s)
    for (i64 d = 0; d < std::min<i64>(topo.num_nodes(), 40); ++d) {
      path.clear();
      topo.route(s, d, path);
      if (s == d) {
        EXPECT_TRUE(path.empty());
        continue;
      }
      EXPECT_FALSE(path.empty());
      for (const i64 link : path) {
        ASSERT_GE(link, 0);
        ASSERT_LT(link, static_cast<i64>(topo.links().size()));
      }
      // Intra-group routes must not touch global links; inter-group must.
      bool crosses_global = false;
      for (const i64 link : path)
        crosses_global |= topo.links()[static_cast<size_t>(link)].cls ==
                          net::LinkClass::global;
      if (topo.group_of(s) == topo.group_of(d)) {
        EXPECT_FALSE(crosses_global) << s << "->" << d;
      }
    }
}

}  // namespace

TEST(Topologies, FatTreeRoutes) {
  net::FatTree topo(4, 8, 2, 25e9);
  EXPECT_EQ(topo.num_nodes(), 32);
  expect_routes_valid(topo);
  // Inter-leaf routes must cross exactly one uplink and one downlink.
  std::vector<i64> path;
  topo.route(0, 31, path);
  i64 globals = 0;
  for (const i64 l : path)
    globals += topo.links()[static_cast<size_t>(l)].cls == net::LinkClass::global;
  EXPECT_EQ(globals, 2);
}

TEST(Topologies, DragonflyRoutes) {
  net::Dragonfly topo(6, 16, 2, 25e9, 25e9);
  EXPECT_EQ(topo.num_nodes(), 96);
  expect_routes_valid(topo);
}

TEST(Topologies, TorusRoutesAreMinimal) {
  net::Torus topo({4, 4, 4}, 6.8e9);
  EXPECT_EQ(topo.num_nodes(), 64);
  std::vector<i64> path;
  for (i64 s = 0; s < 64; ++s)
    for (i64 d = 0; d < 64; ++d) {
      path.clear();
      topo.route(s, d, path);
      // Minimal hop count = sum of per-dimension circular distances.
      const auto cs = topo.coords_of(s), cd = topo.coords_of(d);
      i64 hops = 0;
      for (size_t dim = 0; dim < 3; ++dim) {
        const i64 fwd = pmod(cd[dim] - cs[dim], 4);
        hops += std::min(fwd, 4 - fwd);
      }
      EXPECT_EQ(static_cast<i64>(path.size()), hops) << s << "->" << d;
    }
}

TEST(Topologies, TorusCoordsRoundTrip) {
  net::Torus topo({2, 3, 5}, 1e9);
  for (i64 n = 0; n < topo.num_nodes(); ++n)
    EXPECT_EQ(topo.node_at(topo.coords_of(n)), n);
}

TEST(Topologies, MultiGpuIntraNodeStaysLocal) {
  net::MultiGpu topo(4, 4, 150e9, 25e9);
  std::vector<i64> path;
  topo.route(0, 3, path);  // same node
  for (const i64 l : path)
    EXPECT_EQ(static_cast<int>(topo.links()[static_cast<size_t>(l)].cls),
              static_cast<int>(net::LinkClass::intra_node));
  path.clear();
  topo.route(0, 5, path);  // different nodes
  bool global = false;
  for (const i64 l : path)
    global |= topo.links()[static_cast<size_t>(l)].cls == net::LinkClass::global;
  EXPECT_TRUE(global);
}

TEST(Traffic, Fig1ExactCounts) {
  // The Fig. 1 example, as an exact regression: 8 nodes, 2 per leaf, 2:1.
  net::FatTree topo(4, 2, 2, 25e9);
  const net::Placement pl = net::Placement::identity(8);
  coll::Config cfg;
  cfg.p = 8;
  cfg.elem_count = 1024;
  cfg.elem_size = 4;
  const i64 n = cfg.elem_count * cfg.elem_size;
  const auto dd = net::measure_traffic(
      coll::bcast_tree(cfg, core::TreeVariant::binomial_dd), topo, pl);
  const auto dh = net::measure_traffic(
      coll::bcast_tree(cfg, core::TreeVariant::binomial_dh), topo, pl);
  const auto bine = net::measure_traffic(coll::bcast_tree(cfg, core::TreeVariant::bine_dh),
                                         topo, pl);
  EXPECT_EQ(dd.global_bytes, 2 * 6 * n);  // uplink + downlink per message
  EXPECT_EQ(dh.global_bytes, 2 * 3 * n);
  EXPECT_EQ(bine.global_bytes, 2 * 3 * n);
}

TEST(Traffic, InterGroupMatchesRoutedGlobalOnDragonflySingleLinkGroups) {
  // With one rank per node and minimal routing, inter-group bytes counted
  // group-wise must equal the routed global-link bytes.
  net::Dragonfly topo(5, 8, 1, 25e9, 25e9);
  const i64 p = 40;
  const net::Placement pl = net::Placement::identity(p);
  std::vector<i64> groups;
  for (i64 r = 0; r < p; ++r) groups.push_back(topo.group_of(r));
  coll::Config cfg;
  cfg.p = p;
  cfg.elem_count = 400;
  for (const char* algo : {"ring", "recursive_doubling"}) {
    const auto sch =
        coll::find_algorithm(sched::Collective::allreduce, std::string(algo)).make(cfg);
    EXPECT_EQ(net::measure_traffic(sch, topo, pl).global_bytes,
              net::inter_group_bytes(sch, groups))
        << algo;
  }
}

TEST(CostModel, TimeGrowsWithVectorSize) {
  const auto profile = net::lumi_profile();
  harness::Runner runner(profile);
  const auto& entry = coll::find_algorithm(sched::Collective::allreduce, "bine_send");
  double prev = 0;
  for (const i64 size : {1 << 10, 1 << 14, 1 << 18, 1 << 22}) {
    const double t = runner.run(sched::Collective::allreduce, entry, 64, size).seconds;
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(CostModel, RingBeatsButterflyOnHugeVectorsSmallScale) {
  // The classic crossover the paper leans on (Figs. 9a/10a): ring wins large
  // vectors at small node counts, butterflies win small vectors. The
  // crossover is a healthy-machine cost-model claim, so an explicit trivial
  // fault spec pins it against any ambient BINE_FAULT_SPEC (the CI
  // fault-injection job degrades links, which can legitimately flip it).
  net::SystemProfile profile = net::leonardo_profile();
  profile.faults = std::make_shared<fault::FaultSpec>();
  harness::Runner runner(std::move(profile));
  const auto ring = coll::find_algorithm(sched::Collective::allreduce, "ring");
  const auto rd = coll::find_algorithm(sched::Collective::allreduce, "recursive_doubling");
  const double t_ring_small =
      runner.run(sched::Collective::allreduce, ring, 32, 256).seconds;
  const double t_rd_small = runner.run(sched::Collective::allreduce, rd, 32, 256).seconds;
  EXPECT_LT(t_rd_small, t_ring_small);
}

TEST(Allocation, BlockDistributionSortedAndSized) {
  alloc::Machine m{8, 32};
  alloc::SyntheticScheduler sched_gen(m, 0.4, 123);
  for (const i64 size : {4, 16, 100, 200}) {
    const auto job = sched_gen.sample_job(size);
    ASSERT_EQ(static_cast<i64>(job.node_of_rank.size()), size);
    for (size_t k = 1; k < job.node_of_rank.size(); ++k)
      EXPECT_LT(job.node_of_rank[k - 1], job.node_of_rank[k]);
    for (const i64 n : job.node_of_rank) {
      EXPECT_GE(n, 0);
      EXPECT_LT(n, m.num_nodes());
    }
  }
}

TEST(Allocation, TreeAllreduceReductionRespects33PercentBound) {
  // Property over many random allocations: the tree-based estimate of Fig. 5
  // never exceeds the Eq. 2 bound.
  alloc::Machine m{12, 64};
  alloc::SyntheticScheduler sched_gen(m, 0.5, 99);
  for (int trial = 0; trial < 60; ++trial) {
    const i64 size = 16 << (trial % 5);
    const auto job = sched_gen.sample_job(size);
    const auto groups = job.groups_on(m);
    coll::Config cfg;
    cfg.p = size;
    cfg.elem_count = 256;
    const i64 bine =
        net::inter_group_bytes(coll::bcast_tree(cfg, core::TreeVariant::bine_dh), groups);
    const i64 binom = net::inter_group_bytes(
        coll::bcast_tree(cfg, core::TreeVariant::binomial_dh), groups);
    if (binom == 0) continue;
    const double reduction = 1.0 - static_cast<double>(bine) / static_cast<double>(binom);
    EXPECT_LE(reduction, 1.0 / 3.0 + 1e-9) << "trial " << trial << " size " << size;
  }
}

TEST(Harness, BestBineSkipsSpecializedAlgorithms) {
  harness::Runner runner(net::lumi_profile());
  const auto [name, result] =
      runner.best_bine(sched::Collective::allreduce, 64, 1 << 16, false);
  EXPECT_EQ(name.find("torus"), std::string::npos);
  EXPECT_EQ(name.find("hierarchical"), std::string::npos);
  EXPECT_GT(result.seconds, 0);
}

TEST(Harness, SizesAndLabels) {
  EXPECT_EQ(harness::size_label(32), "32 B");
  EXPECT_EQ(harness::size_label(2048), "2 KiB");
  EXPECT_EQ(harness::size_label(1 << 20), "1 MiB");
  EXPECT_EQ(harness::size_label(i64{512} << 20), "512 MiB");
  EXPECT_EQ(harness::paper_vector_sizes(true).size(), 9u);
}
