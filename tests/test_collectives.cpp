// End-to-end correctness: every registered algorithm, executed over real
// buffers by the compiled runtime engine, must satisfy its collective's
// postconditions -- including contributor-set tracking that rejects double
// reductions. (Compiled-vs-reference bit-exactness lives in
// test_exec_engine.cpp; this suite runs the engine the harness ships.)
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "coll/registry.hpp"
#include "core/block_perm.hpp"
#include "runtime/compiled_executor.hpp"
#include "runtime/verify.hpp"

namespace bc = bine::coll;
namespace br = bine::runtime;
namespace bs = bine::sched;
using bine::i64;
using bine::Rank;
using bine::u64;

namespace {

/// Deterministic, rank- and element-distinguishing inputs. u64 + wrapping sum
/// keeps every reduction exact regardless of association order.
std::vector<std::vector<u64>> make_inputs(i64 p, i64 elems) {
  std::vector<std::vector<u64>> in(static_cast<size_t>(p));
  for (i64 r = 0; r < p; ++r) {
    in[static_cast<size_t>(r)].resize(static_cast<size_t>(elems));
    for (i64 e = 0; e < elems; ++e)
      in[static_cast<size_t>(r)][static_cast<size_t>(e)] =
          static_cast<u64>(r) * 1'000'003u + static_cast<u64>(e) * 97u + 13u;
  }
  return in;
}

struct Case {
  bs::Collective coll;
  std::string algo;
  i64 p;
  Rank root;
};

std::string case_name(const ::testing::TestParamInfo<Case>& ti) {
  return std::string(to_string(ti.param.coll)) + "_" + ti.param.algo + "_p" +
         std::to_string(ti.param.p) + "_root" + std::to_string(ti.param.root);
}

class CollectiveCorrectness : public ::testing::TestWithParam<Case> {};

TEST_P(CollectiveCorrectness, ExecutesAndVerifies) {
  const Case& c = GetParam();
  const auto& entry = bc::find_algorithm(c.coll, c.algo);
  if (entry.pow2_only && !bine::is_pow2(c.p)) GTEST_SKIP() << "pow2-only algorithm";

  bc::Config cfg;
  cfg.p = c.p;
  cfg.elem_count = 3 * c.p + 5;  // non-divisible on purpose
  cfg.elem_size = 8;
  cfg.root = c.root;

  const bs::Schedule sch = entry.make(cfg);
  ASSERT_EQ(sch.validate(), "") << sch.algorithm;

  const auto inputs = make_inputs(
      c.p, sch.space == bs::BlockSpace::pairwise ? cfg.elem_count : cfg.elem_count);
  const br::ExecPlan plan = br::ExecPlan::lower(sch);
  const auto result = br::execute<u64>(plan, br::ReduceOp::sum, inputs);
  EXPECT_EQ(br::verify<u64>(plan, br::ReduceOp::sum, inputs, result), "")
      << sch.algorithm << " p=" << c.p << " root=" << c.root;
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  const std::vector<i64> pow2_p = {2, 4, 8, 16, 32, 64};
  const std::vector<i64> npow2_p = {3, 5, 6, 7, 12, 24, 33};
  for (const bs::Collective coll : bc::all_collectives()) {
    const bool rooted = coll == bs::Collective::bcast || coll == bs::Collective::reduce ||
                        coll == bs::Collective::gather || coll == bs::Collective::scatter;
    for (const auto& entry : bc::algorithms_for(coll)) {
      for (const i64 p : pow2_p) cases.push_back({coll, entry.name, p, 0});
      for (const i64 p : npow2_p) cases.push_back({coll, entry.name, p, 0});
      if (rooted) {
        cases.push_back({coll, entry.name, 16, 5});
        cases.push_back({coll, entry.name, 12, 7});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, CollectiveCorrectness,
                         ::testing::ValuesIn(all_cases()), case_name);

// --- Cross-type coverage: reductions on other element types -------------------

TEST(CollectiveTypes, AllreduceInt32MinMax) {
  bc::Config cfg;
  cfg.p = 16;
  cfg.elem_count = 40;
  cfg.elem_size = 4;
  for (const char* algo : {"bine_send", "bine_small", "ring"}) {
    const bs::Schedule sch = bc::find_algorithm(bs::Collective::allreduce, algo).make(cfg);
    std::vector<std::vector<int32_t>> in(16);
    for (i64 r = 0; r < 16; ++r) {
      in[static_cast<size_t>(r)].resize(40);
      for (i64 e = 0; e < 40; ++e)
        in[static_cast<size_t>(r)][static_cast<size_t>(e)] =
            static_cast<int32_t>((r * 37 + e * 11) % 1000 - 500);
    }
    for (const br::ReduceOp op : {br::ReduceOp::min, br::ReduceOp::max, br::ReduceOp::sum,
                                  br::ReduceOp::band, br::ReduceOp::bor}) {
      const br::ExecPlan plan = br::ExecPlan::lower(sch);
      const auto res = br::execute<int32_t>(plan, op, in);
      EXPECT_EQ(br::verify<int32_t>(plan, op, in, res), "")
          << algo << " op=" << to_string(op);
    }
  }
}

TEST(CollectiveTypes, AllreduceDoubleExact) {
  // Small integers stored in doubles reduce exactly in any association order.
  bc::Config cfg;
  cfg.p = 8;
  cfg.elem_count = 24;
  cfg.elem_size = 8;
  const bs::Schedule sch =
      bc::find_algorithm(bs::Collective::allreduce, "bine_permute").make(cfg);
  std::vector<std::vector<double>> in(8);
  for (i64 r = 0; r < 8; ++r) {
    in[static_cast<size_t>(r)].resize(24);
    for (i64 e = 0; e < 24; ++e)
      in[static_cast<size_t>(r)][static_cast<size_t>(e)] = static_cast<double>(r + e % 7);
  }
  const br::ExecPlan plan = br::ExecPlan::lower(sch);
  const auto res = br::execute<double>(plan, br::ReduceOp::sum, in);
  EXPECT_EQ(br::verify<double>(plan, br::ReduceOp::sum, in, res), "");
}

// --- Failure injection: the executor must reject broken schedules -------------

TEST(ExecutorFaults, RejectsDuplicateContribution) {
  // A hand-built "reduce" where rank 0 receives rank 1's vector twice.
  bc::Config cfg;
  cfg.p = 4;
  cfg.elem_count = 8;
  bs::Schedule sch = bc::make_base(bs::Collective::reduce, cfg, "broken",
                                   bs::BlockSpace::per_vector);
  sch.add_exchange(0, 1, 0, bs::BlockSet::all(4), true);
  sch.add_exchange(1, 1, 0, bs::BlockSet::all(4), true);  // duplicate fold
  sch.add_exchange(0, 3, 2, bs::BlockSet::all(4), true);
  sch.normalize_steps();
  const auto in = make_inputs(4, 8);
  const br::ExecPlan plan = br::ExecPlan::lower(sch);
  EXPECT_THROW((void)br::execute<u64>(plan, br::ReduceOp::sum, in), std::runtime_error);
}

TEST(ExecutorFaults, RejectsSendingAbsentBlock) {
  // In a bcast, rank 1 cannot forward data before receiving it.
  bc::Config cfg;
  cfg.p = 4;
  cfg.elem_count = 8;
  bs::Schedule sch =
      bc::make_base(bs::Collective::bcast, cfg, "broken", bs::BlockSpace::per_vector);
  sch.add_exchange(0, 1, 2, bs::BlockSet::all(4), false);  // rank 1 has nothing yet
  sch.normalize_steps();
  const auto in = make_inputs(4, 8);
  const br::ExecPlan plan = br::ExecPlan::lower(sch);
  EXPECT_THROW((void)br::execute<u64>(plan, br::ReduceOp::sum, in), std::runtime_error);
}

TEST(ExecutorFaults, RejectsUnmatchedMessage) {
  bc::Config cfg;
  cfg.p = 4;
  cfg.elem_count = 8;
  bs::Schedule sch =
      bc::make_base(bs::Collective::bcast, cfg, "broken", bs::BlockSpace::per_vector);
  sch.add_exchange(0, 0, 1, bs::BlockSet::all(4), false);
  // Corrupt: drop the recv half.
  sch.steps[1][0].ops.clear();
  sch.normalize_steps();
  EXPECT_NE(sch.validate(), "");
}

TEST(ExecutorFaults, IncompleteBroadcastFailsVerification) {
  // A bcast that never reaches rank 3.
  bc::Config cfg;
  cfg.p = 4;
  cfg.elem_count = 8;
  bs::Schedule sch =
      bc::make_base(bs::Collective::bcast, cfg, "partial", bs::BlockSpace::per_vector);
  sch.add_exchange(0, 0, 1, bs::BlockSet::all(4), false);
  sch.add_exchange(1, 0, 2, bs::BlockSet::all(4), false);
  sch.normalize_steps();
  const auto in = make_inputs(4, 8);
  const br::ExecPlan plan = br::ExecPlan::lower(sch);
  const auto res = br::execute<u64>(plan, br::ReduceOp::sum, in);
  EXPECT_NE(br::verify<u64>(plan, br::ReduceOp::sum, in, res), "");
}

// --- Volume sanity -------------------------------------------------------------

TEST(Volumes, ReduceScatterMatchesTheory) {
  // Sec. 4.3: each rank sends n*(p-1)/p bytes over log2(p) steps.
  for (const i64 p : {8, 16, 32}) {
    bc::Config cfg;
    cfg.p = p;
    cfg.elem_count = 16 * p;
    cfg.elem_size = 4;
    for (const char* algo : {"bine_send", "bine_permute", "bine_block", "bine_two_trans",
                             "recursive_halving"}) {
      const bs::Schedule sch =
          bc::find_algorithm(bs::Collective::reduce_scatter, std::string(algo)).make(cfg);
      i64 expected = cfg.elem_count * cfg.elem_size / p * (p - 1) * p;
      if (std::string(algo) == "bine_send") {
        // Fix-up exchange: one block per rank that is not a fixed point of
        // the reverse(nu) permutation.
        i64 moved = 0;
        for (i64 r = 0; r < p; ++r)
          if (bine::core::permuted_position(r, p) != r) ++moved;
        expected += moved * (cfg.elem_count * cfg.elem_size / p);
      }
      EXPECT_EQ(sch.total_wire_bytes(), expected) << algo << " p=" << p;
    }
  }
}

TEST(Volumes, AllreduceButterflyVolume) {
  // Large-vector allreduce moves 2n(p-1)/p bytes per rank.
  bc::Config cfg;
  cfg.p = 16;
  cfg.elem_count = 160;
  cfg.elem_size = 4;
  for (const char* algo : {"bine_send", "rabenseifner", "ring", "swing"}) {
    const bs::Schedule sch =
        bc::find_algorithm(bs::Collective::allreduce, std::string(algo)).make(cfg);
    EXPECT_EQ(sch.total_wire_bytes(),
              2 * cfg.elem_count * cfg.elem_size / 16 * 15 * 16 / 16 * 16)
        << algo;
  }
}

}  // namespace
