// Durable-execution tests: the journal's on-disk damage discipline (torn
// tails, checksum flips, foreign fingerprints), plan fingerprint
// sensitivity/invariance, kill-resume byte-identity for sweeps and tuner
// builds, per-cell deadlines, cooperative cancellation drain semantics, and
// the stale-temp reclamation AtomicFile artifacts rely on.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "exp/journal.hpp"
#include "exp/sweep.hpp"
#include "fault/fault.hpp"
#include "harness/cancel.hpp"
#include "harness/parallel.hpp"
#include "net/profiles.hpp"
#include "tune/tuner.hpp"

using namespace bine;
using sched::Collective;

namespace {

// Runner consults BINE_FAULT_SPEC at construction; an inherited CI spec
// would perturb the byte-identity references.
const bool env_cleared = [] {
  unsetenv("BINE_FAULT_SPEC");
  return true;
}();

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

bool file_exists(const std::string& path) {
  std::ifstream in(path);
  return in.good();
}

void remove_journal(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".corrupt").c_str());
}

// Small simulate-backend plan with three cells (one per node count), so a
// cancel-after-one run leaves real resume work behind.
exp::SweepPlan small_plan(const std::string& journal = "") {
  exp::SweepPlan plan;
  plan.name = "durable_small";
  plan.systems = {exp::SystemSpec{net::lumi_profile()}};
  plan.colls = {Collective::allreduce};
  plan.series = {exp::Series::best_binomial()};
  plan.nodes.counts = {8, 16, 32};
  plan.sizes = {1024, 65536};
  plan.threads = 1;
  plan.journal_path = journal;
  return plan;
}

}  // namespace

// --- journal on-disk discipline ---------------------------------------------

TEST(Journal, RoundTripAcrossReopen) {
  ASSERT_TRUE(env_cleared);
  const std::string path = "durable_roundtrip.journal";
  remove_journal(path);

  {
    exp::Journal::OpenReport rep;
    auto j = exp::Journal::open(path, 0xabcdu, &rep);
    ASSERT_NE(j, nullptr);
    EXPECT_EQ(rep.replayable, 0);
    EXPECT_FALSE(rep.quarantined);
    EXPECT_TRUE(j->append("s0.allreduce.p8", "payload one\nwith a newline"));
    EXPECT_TRUE(j->append("s0.allreduce.p16", ""));  // empty payloads are legal
  }
  exp::Journal::OpenReport rep;
  auto j = exp::Journal::open(path, 0xabcdu, &rep);
  ASSERT_NE(j, nullptr);
  EXPECT_EQ(rep.replayable, 2);
  EXPECT_EQ(rep.dropped, 0);
  EXPECT_FALSE(rep.quarantined);
  EXPECT_EQ(j->records(), 2u);
  ASSERT_NE(j->lookup("s0.allreduce.p8"), nullptr);
  EXPECT_EQ(*j->lookup("s0.allreduce.p8"), "payload one\nwith a newline");
  ASSERT_NE(j->lookup("s0.allreduce.p16"), nullptr);
  EXPECT_EQ(*j->lookup("s0.allreduce.p16"), "");
  EXPECT_EQ(j->lookup("s0.allreduce.p32"), nullptr);
  remove_journal(path);
}

TEST(Journal, TornTailIsDroppedAndQuarantined) {
  const std::string path = "durable_torn.journal";
  remove_journal(path);
  {
    auto j = exp::Journal::open(path, 0x1u);
    ASSERT_NE(j, nullptr);
    ASSERT_TRUE(j->append("a", "first payload"));
    ASSERT_TRUE(j->append("b", "second payload"));
  }
  // SIGKILL mid-append: the file ends inside the last record.
  std::string bytes = read_file(path);
  write_file(path, bytes.substr(0, bytes.size() - 5));

  exp::Journal::OpenReport rep;
  auto j = exp::Journal::open(path, 0x1u, &rep);
  ASSERT_NE(j, nullptr);
  EXPECT_EQ(rep.replayable, 1);  // the intact prefix survives
  EXPECT_EQ(rep.dropped, 1);
  EXPECT_TRUE(rep.quarantined);
  EXPECT_TRUE(file_exists(path + ".corrupt"));  // damage kept as evidence
  ASSERT_FALSE(rep.notes.empty());
  EXPECT_NE(rep.notes.front().find("torn journal tail at byte"), std::string::npos);
  ASSERT_NE(j->lookup("a"), nullptr);
  EXPECT_EQ(j->lookup("b"), nullptr);

  // The rewrite healed the file: a third open sees a clean journal.
  j.reset();
  exp::Journal::OpenReport rep2;
  auto j2 = exp::Journal::open(path, 0x1u, &rep2);
  ASSERT_NE(j2, nullptr);
  EXPECT_EQ(rep2.replayable, 1);
  EXPECT_EQ(rep2.dropped, 0);
  EXPECT_FALSE(rep2.quarantined);
  remove_journal(path);
}

TEST(Journal, ChecksumFlipDropsOnlyThatRecord) {
  const std::string path = "durable_flip.journal";
  remove_journal(path);
  {
    auto j = exp::Journal::open(path, 0x2u);
    ASSERT_NE(j, nullptr);
    ASSERT_TRUE(j->append("a", "alpha payload"));
    ASSERT_TRUE(j->append("b", "bravo payload"));
    ASSERT_TRUE(j->append("c", "charlie payload"));
  }
  // Flip one payload byte of the MIDDLE record; framing stays intact, so
  // only that record may be lost.
  std::string bytes = read_file(path);
  const size_t at = bytes.find("bravo");
  ASSERT_NE(at, std::string::npos);
  bytes[at] = 'B';
  write_file(path, bytes);

  exp::Journal::OpenReport rep;
  auto j = exp::Journal::open(path, 0x2u, &rep);
  ASSERT_NE(j, nullptr);
  EXPECT_EQ(rep.replayable, 2);
  EXPECT_EQ(rep.dropped, 1);
  EXPECT_TRUE(rep.quarantined);
  ASSERT_FALSE(rep.notes.empty());
  EXPECT_NE(rep.notes.front().find("checksum mismatch"), std::string::npos);
  EXPECT_NE(j->lookup("a"), nullptr);
  EXPECT_EQ(j->lookup("b"), nullptr);
  EXPECT_NE(j->lookup("c"), nullptr);  // records AFTER the flip survive
  remove_journal(path);
}

TEST(Journal, ForeignFingerprintIsQuarantinedWhole) {
  const std::string path = "durable_foreign.journal";
  remove_journal(path);
  {
    auto j = exp::Journal::open(path, 0x1111u);
    ASSERT_NE(j, nullptr);
    ASSERT_TRUE(j->append("a", "stale cell"));
  }
  exp::Journal::OpenReport rep;
  auto j = exp::Journal::open(path, 0x2222u, &rep);
  ASSERT_NE(j, nullptr);
  EXPECT_EQ(rep.replayable, 0);  // nothing replays across plans
  EXPECT_TRUE(rep.quarantined);
  EXPECT_TRUE(file_exists(path + ".corrupt"));
  ASSERT_FALSE(rep.notes.empty());
  EXPECT_NE(rep.notes.front().find("belongs to plan fingerprint"), std::string::npos);
  EXPECT_EQ(j->lookup("a"), nullptr);
  remove_journal(path);
}

TEST(Journal, GarbageFileIsQuarantinedAndAdopted) {
  const std::string path = "durable_garbage.journal";
  remove_journal(path);
  write_file(path, "this is not a journal\n");
  exp::Journal::OpenReport rep;
  auto j = exp::Journal::open(path, 0x3u, &rep);
  ASSERT_NE(j, nullptr);
  EXPECT_EQ(rep.replayable, 0);
  EXPECT_TRUE(rep.quarantined);
  EXPECT_TRUE(j->append("a", "fresh"));
  remove_journal(path);
}

// --- plan fingerprint --------------------------------------------------------

TEST(PlanFingerprint, SensitiveToResultsInvariantToExecution) {
  const exp::SweepPlan base = small_plan();
  const u64 fp = exp::plan_fingerprint(base);

  // Anything that changes cell RESULTS changes the key.
  exp::SweepPlan p = base;
  p.sizes.push_back(262144);
  EXPECT_NE(exp::plan_fingerprint(p), fp);
  p = base;
  p.nodes.counts = {8, 16};
  EXPECT_NE(exp::plan_fingerprint(p), fp);
  p = base;
  p.series.push_back(exp::Series::best_sota());
  EXPECT_NE(exp::plan_fingerprint(p), fp);
  p = base;
  p.systems[0].seed = 7;
  EXPECT_NE(exp::plan_fingerprint(p), fp);
  p = base;
  p.journal_salt = 99;
  EXPECT_NE(exp::plan_fingerprint(p), fp);

  // Anything that only changes HOW results are computed does not: the whole
  // point is that a journal written serially resumes a sharded run.
  p = base;
  p.threads = 4;
  p.on_error = exp::SweepPlan::OnError::isolate;
  p.transient_retries = 3;
  p.retry_backoff_ms = 10;
  p.cell_deadline_ms = 60000;
  p.journal_path = "elsewhere.journal";
  EXPECT_EQ(exp::plan_fingerprint(p), fp);
}

// --- sweep resume ------------------------------------------------------------

// The tentpole contract: a journaled sweep cancelled mid-run, resumed with
// the same plan and journal, serializes byte-identically to an
// uninterrupted journal-off run.
TEST(DurableSweep, CancelledRunResumesByteIdentical) {
  const std::string path = "durable_sweep.journal";
  remove_journal(path);

  const std::string reference = exp::run(small_plan()).to_json();

  // Journaled run, cancelled after the first completed cell.
  harness::CancelToken token;
  exp::SweepPlan plan = small_plan(path);
  plan.cancel = &token;
  plan.progress = [&token](size_t done, size_t) {
    if (done >= 1) token.cancel();
  };
  const exp::SweepResult partial = exp::run(plan);
  EXPECT_TRUE(partial.cancelled);
  EXPECT_EQ(partial.journal.executed, 1);
  EXPECT_EQ(partial.journal.replayed, 0);
  EXPECT_NE(partial.to_json(), reference);  // genuinely partial
  EXPECT_NE(partial.to_json().find("\"cancelled\": true"), std::string::npos);

  // Resume: journaled cells replay, the rest execute, output is identical.
  const exp::SweepResult resumed = exp::run(small_plan(path));
  EXPECT_FALSE(resumed.cancelled);
  EXPECT_EQ(resumed.journal.replayed, 1);
  EXPECT_EQ(resumed.journal.executed, 2);
  EXPECT_EQ(resumed.to_json(), reference);

  // A third run is answered from the journal alone -- still identical,
  // across shard widths (the fingerprint ignores plan.threads).
  exp::SweepPlan replay = small_plan(path);
  replay.threads = 4;
  const exp::SweepResult full = exp::run(replay);
  EXPECT_EQ(full.journal.replayed, 3);
  EXPECT_EQ(full.journal.executed, 0);
  EXPECT_EQ(full.to_json(), reference);
  remove_journal(path);
}

// Journaled failure rows replay byte-identically too: a deterministic
// failure under OnError::isolate costs one execution per journal lifetime.
TEST(DurableSweep, JournaledFailureReplaysByteIdentical) {
  const std::string path = "durable_fail.journal";
  remove_journal(path);

  // bine_permute rejects non-pow2 rank counts, so a best_of over just it
  // fails deterministically at p=12 ("no applicable algorithm").
  exp::SweepPlan plan;
  plan.name = "durable_fail";
  plan.systems = {exp::SystemSpec{net::lumi_profile()}};
  plan.colls = {Collective::allgather};
  plan.series = {exp::Series::best_of("probe", {"bine_permute", "ring"}),
                 exp::Series::best_of("broken", {"bine_permute"})};
  plan.nodes.counts = {12, 16};
  plan.sizes = {1024};
  plan.threads = 1;
  plan.on_error = exp::SweepPlan::OnError::isolate;

  const exp::SweepResult fresh = exp::run(plan);
  ASSERT_EQ(fresh.errors.size(), 1u);
  EXPECT_EQ(fresh.errors[0].nodes, 12);
  const std::string reference = fresh.to_json();

  plan.journal_path = path;
  EXPECT_EQ(exp::run(plan).to_json(), reference);  // journaled fresh run
  const exp::SweepResult replayed = exp::run(plan);
  EXPECT_EQ(replayed.journal.replayed, 2);
  EXPECT_EQ(replayed.journal.executed, 0);
  EXPECT_EQ(replayed.to_json(), reference);  // errors array included
  remove_journal(path);
}

// Journal-off plans must not notice the durable layer at all, and custom
// backends may not journal (an opaque metric cannot be fingerprinted).
TEST(DurableSweep, JournalOffAndCustomRejection) {
  exp::SweepPlan plan = small_plan();
  const exp::SweepResult r = exp::run(plan);
  EXPECT_EQ(r.journal.replayed, 0);
  EXPECT_EQ(r.journal.executed, 0);
  EXPECT_EQ(r.to_json().find("\"cancelled\""), std::string::npos);

  exp::SweepPlan custom;
  custom.name = "custom_journal";
  custom.backend = exp::Backend::custom;
  custom.sizes = {1};
  custom.metric = [](const exp::CellCtx&) { return exp::Metrics{}; };
  custom.journal_path = "never_written.journal";
  EXPECT_THROW((void)exp::run(custom), std::invalid_argument);
  EXPECT_FALSE(file_exists("never_written.journal"));
}

// --- per-cell deadlines ------------------------------------------------------

TEST(DurableDeadline, OverrunningCellFailsPermanently) {
  std::atomic<int> attempts{0};
  exp::SweepPlan plan;
  plan.name = "deadline";
  plan.backend = exp::Backend::custom;
  plan.systems.emplace_back(net::lumi_profile());
  plan.colls = {Collective::allreduce};
  plan.series.push_back(exp::Series::best_of("probe", {}));
  plan.nodes.counts = {8, 16};
  plan.sizes = {1024};
  plan.threads = 1;
  plan.on_error = exp::SweepPlan::OnError::isolate;
  plan.transient_retries = 3;  // must NOT apply: deadlines are permanent
  plan.cell_deadline_ms = 20;
  plan.metric = [&attempts](const exp::CellCtx& ctx) -> exp::Metrics {
    if (ctx.nodes == 16) {
      ++attempts;
      std::this_thread::sleep_for(std::chrono::milliseconds(60));
      ctx.guard->checkpoint("slow metric");  // cooperative boundary
    }
    exp::Metrics m;
    m.value = static_cast<double>(ctx.nodes);
    return m;
  };

  const exp::SweepResult res = exp::run(plan);
  ASSERT_EQ(res.errors.size(), 1u);
  EXPECT_TRUE(res.errors[0].deadline_exceeded);
  EXPECT_FALSE(res.errors[0].transient);
  EXPECT_EQ(res.errors[0].attempts, 1);  // never retried
  EXPECT_EQ(attempts.load(), 1);
  EXPECT_NE(res.errors[0].message.find("deadline"), std::string::npos);
  EXPECT_NE(res.to_json().find("\"deadline\": true"), std::string::npos);

  // A generous budget lets the same plan pass: the guard is cooperative,
  // not a watchdog.
  attempts = 0;
  plan.cell_deadline_ms = 60000;
  EXPECT_TRUE(exp::run(plan).errors.empty());
}

TEST(DurableDeadline, GuardPrimitives) {
  EXPECT_FALSE(harness::Deadline::after_ms(0).armed());  // 0 = no deadline
  const harness::Deadline d = harness::Deadline::after_ms(60000);
  EXPECT_TRUE(d.armed());
  EXPECT_FALSE(d.expired());
  const harness::CellGuard relaxed{harness::Deadline::after_ms(0)};
  relaxed.checkpoint("anywhere");  // unarmed: never throws

  const harness::CellGuard tight{harness::Deadline::after_ms(1)};
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_THROW(tight.checkpoint("here"), fault::DeadlineExceeded);
  try {
    tight.checkpoint("somewhere");
  } catch (...) {
    EXPECT_TRUE(fault::current_exception_is_deadline());
    EXPECT_EQ(fault::classify_current_exception(), fault::FaultClass::permanent);
  }
}

// --- cooperative cancellation ------------------------------------------------

TEST(DurableCancel, ParallelForDrainsInFlightWork) {
  // Pre-fired token: nothing runs, serial or threaded.
  harness::CancelToken fired;
  fired.cancel();
  std::atomic<int> ran{0};
  harness::parallel_for(64, [&](i64) { ++ran; }, 1, &fired);
  harness::parallel_for(64, [&](i64) { ++ran; }, 4, &fired);
  EXPECT_EQ(ran.load(), 0);

  // Cancelling from inside: the in-flight call finishes (drain), no new
  // index is handed out afterwards on the serial path.
  harness::CancelToken token;
  ran = 0;
  harness::parallel_for(
      64,
      [&](i64) {
        ++ran;
        token.cancel();
      },
      1, &token);
  EXPECT_EQ(ran.load(), 1);

  // Threaded: at most one in-flight index per worker after the fire.
  harness::CancelToken token4;
  ran = 0;
  harness::parallel_for(
      1 << 16,
      [&](i64) {
        ++ran;
        token4.cancel();
      },
      4, &token4);
  EXPECT_LE(ran.load(), 4 + 3);  // in-flight drain, not a hard stop
  EXPECT_GE(ran.load(), 1);
}

TEST(DurableCancel, CancelledRowsAreMarked) {
  harness::CancelToken token;
  exp::SweepPlan plan = small_plan();
  plan.cancel = &token;
  plan.progress = [&token](size_t done, size_t) {
    if (done >= 1) token.cancel();
  };
  const exp::SweepResult res = exp::run(plan);
  EXPECT_TRUE(res.cancelled);
  int ok_rows = 0, cancelled_rows = 0;
  for (const exp::Row& row : res.rows) {
    if (row.m.cancelled) {
      ++cancelled_rows;
      EXPECT_TRUE(row.m.algorithm.empty());
    } else {
      ++ok_rows;
    }
  }
  EXPECT_EQ(ok_rows, 2);         // one cell = two sizes
  EXPECT_EQ(cancelled_rows, 4);  // two cells never ran
  EXPECT_NE(res.to_json().find("\"cancelled\": true"), std::string::npos);
}

// --- durable tuner builds ----------------------------------------------------

TEST(DurableTuner, CancelledBuildResumesByteIdentical) {
  const std::string path = "durable_tuner.journal";
  remove_journal(path);

  tune::TunerOptions opts;
  opts.size_grid = {1024, 65536};
  opts.threads = 1;
  const std::vector<net::SystemProfile> profiles = {net::lumi_profile()};
  const std::vector<Collective> colls = {Collective::allreduce,
                                         Collective::allgather};
  const std::vector<i64> nodes = {16};
  const std::string reference = tune::Tuner(opts).build(profiles, colls, nodes).dump();

  // Durable build, cancelled after the first tuned cell.
  harness::CancelToken token;
  opts.journal_path = path;
  opts.cancel = &token;
  opts.progress = [&token](size_t done, size_t) {
    if (done >= 1) token.cancel();
  };
  tune::BuildReport partial;
  const tune::DecisionTable half =
      tune::Tuner(opts).build(profiles, colls, nodes, &partial);
  EXPECT_EQ(partial.cells, 1);
  EXPECT_EQ(partial.cancelled_cells, 1);
  EXPECT_EQ(partial.replayed_cells, 0);
  ASSERT_FALSE(partial.notes.empty());
  EXPECT_NE(partial.notes.back().find("resumable from the journal"),
            std::string::npos);
  EXPECT_NE(half.dump(), reference);

  // Resume without the token: the finished cell replays, the rest tune.
  opts.cancel = nullptr;
  opts.progress = nullptr;
  tune::BuildReport resumed;
  const tune::DecisionTable full =
      tune::Tuner(opts).build(profiles, colls, nodes, &resumed);
  EXPECT_EQ(resumed.replayed_cells, 1);
  EXPECT_EQ(resumed.cancelled_cells, 0);
  EXPECT_EQ(resumed.cells, 2);
  EXPECT_EQ(full.dump(), reference);

  // A differently-configured tuner must NOT replay this journal: its salt
  // changes the plan fingerprint and the stale journal is quarantined.
  tune::TunerOptions other = opts;
  other.size_grid = {1024, 65536, 262144};
  tune::BuildReport fresh;
  (void)tune::Tuner(other).build(profiles, colls, nodes, &fresh);
  EXPECT_EQ(fresh.replayed_cells, 0);
  EXPECT_TRUE(file_exists(path + ".corrupt"));
  remove_journal(path);
}

// --- stale temp reclamation --------------------------------------------------

TEST(DurableTemps, StaleAtomicFileTempsAreReclaimed) {
  const std::string path = "durable_artifact.json";
  // A dead writer's temp (PID far above any live process on a test box), a
  // live writer's temp (our own PID), and an unrelated file that merely
  // shares the prefix: only the first may be removed.
  const std::string dead = path + ".tmp.999999999.3";
  const std::string live = path + ".tmp." + std::to_string(getpid()) + ".1";
  const std::string odd = path + ".tmp.not-a-pid";
  write_file(dead, "torn");
  write_file(live, "in flight");
  write_file(odd, "unrelated");

  EXPECT_EQ(fault::clean_stale_temps(path), 1);
  EXPECT_FALSE(file_exists(dead));
  EXPECT_TRUE(file_exists(live));
  EXPECT_TRUE(file_exists(odd));

  // save_json sweeps its own artifact's garbage before writing.
  write_file(dead, "torn again");
  exp::run(small_plan()).save_json(path);
  EXPECT_FALSE(file_exists(dead));
  EXPECT_TRUE(file_exists(path));
  std::remove(path.c_str());
  std::remove(live.c_str());
  std::remove(odd.c_str());
}
