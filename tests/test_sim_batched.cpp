// Size-batched simulation parity: net::simulate_sizes must be bit-identical
// to the per-size compiled oracle (resolve_into + simulate) across the full
// algorithm registry, all four topology families, ragged/non-pow2 rank
// counts, and -- at the Runner level -- schedule cache on/off and sweep
// worker counts {1, 4}. "Bit-identical" is literal: seconds compare by bit
// pattern, not tolerance.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "coll/registry.hpp"
#include "harness/runner.hpp"
#include "net/profiles.hpp"
#include "net/route_cache.hpp"
#include "net/simulate.hpp"
#include "net/topology.hpp"
#include "sched/compiled.hpp"
#include "sched/schedule_cache.hpp"

using namespace bine;

namespace {

std::vector<std::unique_ptr<net::Topology>> four_families() {
  std::vector<std::unique_ptr<net::Topology>> topos;
  topos.push_back(std::make_unique<net::FatTree>(4, 8, 2, 25e9));
  topos.push_back(std::make_unique<net::Dragonfly>(4, 8, 2, 25e9, 25e9));
  topos.push_back(std::make_unique<net::Torus>(std::vector<i64>{4, 4, 2}, 6.8e9));
  topos.push_back(std::make_unique<net::MultiGpu>(8, 4, 150e9, 25e9));
  return topos;  // all 32 endpoints
}

/// Scrambles ranks over nodes so rank pair != node pair (multi-link routes).
net::Placement scrambled_placement(i64 p, i64 nodes) {
  net::Placement pl;
  pl.node_of_rank.resize(static_cast<size_t>(p));
  for (i64 r = 0; r < p; ++r)
    pl.node_of_rank[static_cast<size_t>(r)] = (r * 13 + 5) % nodes;  // 13 coprime
  return pl;
}

void expect_bitwise_eq(const net::SimResult& batched, const net::SimResult& oracle,
                       const std::string& what) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(batched.seconds),
            std::bit_cast<std::uint64_t>(oracle.seconds))
      << what << " seconds " << batched.seconds << " vs " << oracle.seconds;
  EXPECT_EQ(batched.traffic.local_bytes, oracle.traffic.local_bytes) << what;
  EXPECT_EQ(batched.traffic.global_bytes, oracle.traffic.global_bytes) << what;
  EXPECT_EQ(batched.traffic.intra_node_bytes, oracle.traffic.intra_node_bytes) << what;
  EXPECT_EQ(batched.traffic.messages, oracle.traffic.messages) << what;
  EXPECT_EQ(batched.steps, oracle.steps) << what;
}

}  // namespace

// Full registry x 4 topology families x {ragged non-pow2, pow2} rank counts,
// on a ragged size axis (non-pow2 counts included): one simulate_sizes call
// vs the per-size resolve_into + simulate loop the Runner's scalar path runs.
TEST(SimBatched, BitIdenticalToPerSizeOracleAcrossRegistry) {
  const net::CostParams cp;  // defaults: distinct alpha/seg/bw knobs
  const std::vector<i64> elem_counts = {8, 27, 64, 100, 512, 4096, 12345, 262144};
  size_t checked = 0;
  for (const auto& topo : four_families()) {
    for (const i64 p : {i64{27}, i64{32}}) {  // ragged non-pow2 + pow2
      const net::Placement pl = scrambled_placement(p, topo->num_nodes());
      const net::RouteCache rc(*topo, pl);
      for (const sched::Collective coll : coll::all_collectives()) {
        for (const auto& algo : coll::algorithms_for(coll)) {
          if (algo.pow2_only && !is_pow2(p)) continue;
          coll::Config cfg;
          cfg.p = p;
          cfg.elem_size = 4;
          cfg.elem_count = 4096;  // structure probe size; sizes vary below
          auto sf = std::make_shared<const sched::SizeFreeSchedule>(
              sched::SizeFreeSchedule::from(algo.make(cfg)));
          if (!sf->size_independent) continue;  // demoted: no batched path
          const auto batched = net::simulate_sizes(*sf, elem_counts, cfg.elem_size,
                                                   rc, cp);
          ASSERT_EQ(batched.size(), elem_counts.size());
          sched::CompiledSchedule lowered;
          for (size_t s = 0; s < elem_counts.size(); ++s) {
            // Per-size oracle: the exact path Runner::run takes on a hit.
            sched::SizeFreeSchedule::resolve_into(sf, elem_counts[s], cfg.elem_size,
                                                  lowered);
            const net::SimResult oracle = net::simulate(lowered, rc, cp);
            expect_bitwise_eq(batched[s], oracle,
                              topo->name() + "/" + to_string(coll) + "/" + algo.name +
                                  " p=" + std::to_string(p) +
                                  " n=" + std::to_string(elem_counts[s]));
          }
          ++checked;
        }
      }
    }
  }
  EXPECT_GT(checked, 100u);  // the registry sweep actually ran
}

// Runner-level parity: run_sizes vs a run() loop, cache on and off (off
// exercises the per-size fallback), over a torus profile at a ragged node
// count that includes every registered algorithm.
TEST(SimBatched, RunnerRunSizesMatchesRunLoop) {
  const std::vector<i64> sizes = {64, 1024, 12345, 65536, 1 << 20};
  for (const bool cache_on : {true, false}) {
    harness::Runner runner(net::lumi_profile());
    runner.use_private_schedule_cache();
    runner.set_schedule_cache(cache_on);
    for (const sched::Collective coll : coll::all_collectives()) {
      for (const auto& algo : coll::algorithms_for(coll)) {
        if (algo.specialized) continue;
        if (!runner.applicable(algo, 24)) continue;
        const auto batched = runner.run_sizes(coll, algo, 24, sizes);
        ASSERT_EQ(batched.size(), sizes.size());
        for (size_t s = 0; s < sizes.size(); ++s) {
          const harness::RunResult oracle = runner.run(coll, algo, 24, sizes[s]);
          EXPECT_EQ(std::bit_cast<std::uint64_t>(batched[s].seconds),
                    std::bit_cast<std::uint64_t>(oracle.seconds))
              << to_string(coll) << "/" << algo.name << " size=" << sizes[s]
              << " cache=" << cache_on;
          EXPECT_EQ(batched[s].global_bytes, oracle.global_bytes);
          EXPECT_EQ(batched[s].total_bytes, oracle.total_bytes);
          EXPECT_EQ(batched[s].messages, oracle.messages);
          EXPECT_EQ(batched[s].steps, oracle.steps);
        }
      }
    }
  }
}

// The batched sweep grouping (one (coll, nodes) cell spanning the size axis)
// must stay byte-identical across worker counts {1, 4} x cache on/off, and
// agree with the per-query best_of selection it replaces.
TEST(SimBatched, SweepDeterministicAcrossThreadsAndCache) {
  std::vector<harness::SweepQuery> queries;
  for (const sched::Collective coll :
       {sched::Collective::allreduce, sched::Collective::bcast,
        sched::Collective::allgather})
    for (const i64 nodes : {i64{18}, i64{27}})
      for (const i64 size : {i64{256}, i64{4096}, i64{65536}})
        for (const auto kind : {harness::SweepQuery::Kind::bine,
                                harness::SweepQuery::Kind::binomial,
                                harness::SweepQuery::Kind::sota})
          queries.push_back({coll, nodes, size, kind, false});

  std::vector<std::vector<std::pair<std::string, harness::RunResult>>> all;
  for (const bool cache_on : {true, false})
    for (const i64 threads : {i64{1}, i64{4}}) {
      harness::Runner runner(net::lumi_profile());
      runner.use_private_schedule_cache();
      runner.set_schedule_cache(cache_on);
      all.push_back(runner.sweep(queries, threads));
    }
  // Reference: per-query best_of on a fresh runner (the scalar per-size path).
  harness::Runner ref(net::lumi_profile());
  ref.use_private_schedule_cache();
  std::vector<std::pair<std::string, harness::RunResult>> expect;
  for (const auto& q : queries) {
    switch (q.kind) {
      case harness::SweepQuery::Kind::bine:
        expect.push_back(ref.best_bine(q.coll, q.nodes, q.size_bytes, false));
        break;
      case harness::SweepQuery::Kind::binomial:
        expect.push_back(ref.best_binomial(q.coll, q.nodes, q.size_bytes));
        break;
      case harness::SweepQuery::Kind::sota:
        expect.push_back(
            ref.best_of(q.coll, ref.sota_names(q.coll), q.nodes, q.size_bytes));
        break;
    }
  }
  for (const auto& got : all) {
    ASSERT_EQ(got.size(), expect.size());
    for (size_t i = 0; i < expect.size(); ++i) {
      EXPECT_EQ(got[i].first, expect[i].first) << "query " << i;
      EXPECT_EQ(std::bit_cast<std::uint64_t>(got[i].second.seconds),
                std::bit_cast<std::uint64_t>(expect[i].second.seconds))
          << "query " << i;
      EXPECT_EQ(got[i].second.messages, expect[i].second.messages) << "query " << i;
      EXPECT_EQ(got[i].second.total_bytes, expect[i].second.total_bytes) << "query " << i;
    }
  }
}
