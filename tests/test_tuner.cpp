// Tuning subsystem tests: decision-table serialization round-trip
// (bit-identical reload), interval compression covering the full size axis
// with no gaps/overlaps, sharded-vs-serial tuning determinism, tuned
// select() parity with an exhaustive argmin over the same sweep data,
// version/fingerprint mismatch rejection, unknown-algorithm demotion, the
// TunedRunner miss policies, and the typed/op-parameterized verified sweep
// mode the refinement stage rides on.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "coll/registry.hpp"
#include "harness/runner.hpp"
#include "harness/tuned_runner.hpp"
#include "net/profiles.hpp"
#include "tune/decision_table.hpp"
#include "tune/json.hpp"
#include "tune/tuner.hpp"

using namespace bine;
using sched::Collective;

namespace {

/// Small, fast tuning workload shared by most tests: one or two systems, two
/// collectives, two node counts, a 4-point size grid.
tune::TunerOptions small_options(i64 threads = 1) {
  tune::TunerOptions opts;
  opts.size_grid = {256, 8192, 131072, 2097152};
  opts.threads = threads;
  return opts;
}

const std::vector<Collective> kColls = {Collective::allreduce, Collective::allgather};
const std::vector<i64> kNodes = {16, 24};

tune::DecisionTable small_table(i64 threads = 1) {
  return tune::Tuner(small_options(threads))
      .build({net::lumi_profile(), net::mn5_profile()}, kColls, kNodes);
}

}  // namespace

TEST(DecisionTable, RoundTripIsBitIdentical) {
  const tune::DecisionTable table = small_table();
  const std::string dumped = table.dump();
  tune::LoadReport report;
  const tune::DecisionTable reloaded = tune::DecisionTable::parse(dumped, &report);
  EXPECT_EQ(report.demoted_intervals, 0);
  EXPECT_EQ(reloaded, table);
  EXPECT_EQ(reloaded.dump(), dumped);  // canonical form is a fixed point
}

TEST(DecisionTable, SaveLoadRoundTrip) {
  const tune::DecisionTable table = small_table();
  const std::string path = ::testing::TempDir() + "/roundtrip.tune.json";
  table.save(path);
  const tune::DecisionTable loaded = tune::DecisionTable::load(path);
  EXPECT_EQ(loaded, table);
}

TEST(Tuner, IntervalsPartitionTheFullSizeAxis) {
  const tune::DecisionTable table = small_table();
  ASSERT_EQ(table.cells().size(), 2u * kColls.size() * kNodes.size());
  for (const auto& [key, intervals] : table.cells()) {
    ASSERT_FALSE(intervals.empty());
    EXPECT_EQ(intervals.front().lo_bytes, 0);
    EXPECT_EQ(intervals.back().hi_bytes, tune::kNoUpperBound);
    for (size_t i = 0; i < intervals.size(); ++i) {
      EXPECT_LT(intervals[i].lo_bytes, intervals[i].hi_bytes);
      if (i + 1 < intervals.size()) {
        EXPECT_EQ(intervals[i].hi_bytes, intervals[i + 1].lo_bytes);  // no gap/overlap
        EXPECT_NE(intervals[i].algorithm, intervals[i + 1].algorithm);  // compressed
      }
      EXPECT_TRUE(coll::has_algorithm(key.coll, intervals[i].algorithm));
    }
  }
}

// One work item per (system, coll, p) cell: the table must be byte-identical
// whether those cells run serially or sharded over 4 workers (CI additionally
// reruns this whole binary with BINE_THREADS=4).
TEST(Tuner, ShardedBuildMatchesSerialBuild) {
  const tune::DecisionTable serial = small_table(/*threads=*/1);
  const tune::DecisionTable sharded = small_table(/*threads=*/4);
  EXPECT_EQ(serial, sharded);
  EXPECT_EQ(serial.dump(), sharded.dump());
}

// The dispatch contract: select() must agree with an exhaustive argmin over
// the same candidates at every grid point -- the table is compression, not
// approximation.
TEST(Tuner, SelectMatchesExhaustiveArgmin) {
  const tune::TunerOptions opts = small_options();
  const net::SystemProfile profile = net::lumi_profile();
  const tune::DecisionTable table =
      tune::Tuner(opts).build({profile}, kColls, kNodes);

  harness::Runner runner(profile);
  for (const Collective coll : kColls)
    for (const i64 p : kNodes)
      for (const i64 size : opts.size_grid) {
        double best = std::numeric_limits<double>::infinity();
        std::string best_name;
        for (const coll::AlgorithmEntry* cand : tune::Tuner::candidates(coll, p)) {
          const double s = runner.run(coll, *cand, p, size).seconds;
          if (s < best) {
            best = s;
            best_name = cand->name;
          }
        }
        const tune::Selection sel = tune::select(table, profile, coll, p, size);
        EXPECT_TRUE(sel.from_table);
        ASSERT_NE(sel.entry, nullptr);
        EXPECT_EQ(sel.entry->name, best_name)
            << to_string(coll) << " p=" << p << " size=" << size;
      }
}

TEST(DecisionTable, VersionMismatchIsRejected) {
  const tune::DecisionTable table = small_table();
  std::string dumped = table.dump();
  const std::string needle = "\"version\": 1";
  const size_t pos = dumped.find(needle);
  ASSERT_NE(pos, std::string::npos);
  dumped.replace(pos, needle.size(), "\"version\": 2");
  EXPECT_THROW(
      {
        try {
          (void)tune::DecisionTable::parse(dumped);
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find("version mismatch"), std::string::npos);
          throw;
        }
      },
      std::runtime_error);
}

TEST(DecisionTable, UnknownFormatIsRejected) {
  EXPECT_THROW((void)tune::DecisionTable::parse(
                   R"({"format": "not-a-table", "version": 1, "profiles": {}, "cells": []})"),
               std::runtime_error);
}

TEST(DecisionTable, FingerprintMismatchIsRejectedAtSelectAndConstruction) {
  const net::SystemProfile profile = net::lumi_profile();
  tune::DecisionTable stale = small_table();
  stale.set_profile(profile.name, 0xdeadbeefu);  // wrong machine model
  EXPECT_THROW((void)tune::select(stale, profile, Collective::allreduce, 16, 1024),
               std::runtime_error);
  EXPECT_THROW(harness::TunedRunner(profile, stale), std::runtime_error);

  // An untouched table serves the same query fine.
  const tune::DecisionTable fresh = small_table();
  EXPECT_NO_THROW((void)tune::select(fresh, profile, Collective::allreduce, 16, 1024));
}

// Registry drift: algorithms a table names but this build no longer
// registers must be demoted to the heuristic default at load -- never served,
// never a dispatch-time throw.
TEST(DecisionTable, UnknownAlgorithmIsDemotedToDefault) {
  const tune::DecisionTable table = small_table();
  std::string dumped = table.dump();
  // Rename every occurrence of one real winner to something unregistered.
  const auto& cell =
      *table.cell(net::lumi_profile().name, Collective::allreduce, 16);
  const std::string victim = "\"" + cell.front().algorithm + "\"";
  for (size_t pos = dumped.find(victim); pos != std::string::npos;
       pos = dumped.find(victim, pos))
    dumped.replace(pos, victim.size(), "\"retired_algo\"");

  tune::LoadReport report;
  const tune::DecisionTable loaded = tune::DecisionTable::parse(dumped, &report);
  EXPECT_GT(report.demoted_intervals, 0);
  EXPECT_FALSE(report.notes.empty());
  for (const auto& [key, intervals] : loaded.cells())
    for (const tune::SizeInterval& iv : intervals) {
      EXPECT_NE(iv.algorithm, "retired_algo");
      EXPECT_TRUE(coll::has_algorithm(key.coll, iv.algorithm));
    }
}

TEST(DecisionTable, StructuralDamageIsRejected) {
  tune::DecisionTable table;
  // Gap between intervals.
  EXPECT_THROW(table.set_cell({"x", Collective::allreduce, 8},
                              {{0, 100, "ring"}, {200, tune::kNoUpperBound, "swing"}}),
               std::invalid_argument);
  // Not open-ended.
  EXPECT_THROW(table.set_cell({"x", Collective::allreduce, 8}, {{0, 100, "ring"}}),
               std::invalid_argument);
  // Doesn't start at zero.
  EXPECT_THROW(
      table.set_cell({"x", Collective::allreduce, 8},
                     {{1, tune::kNoUpperBound, "ring"}}),
      std::invalid_argument);
  // Empty cell.
  EXPECT_THROW(table.set_cell({"x", Collective::allreduce, 8}, {}),
               std::invalid_argument);
}

TEST(TunedRunner, MissPoliciesAndCounters) {
  const net::SystemProfile profile = net::lumi_profile();
  const tune::DecisionTable table =
      tune::Tuner(small_options()).build({profile}, kColls, {16});

  {  // heuristic_default: untuned p falls back to the paper's rules.
    harness::TunedRunner tr(profile, table);
    const auto& hit = tr.select(Collective::allreduce, 16, 8192);
    EXPECT_TRUE(coll::has_algorithm(Collective::allreduce, hit.name));
    const auto& miss = tr.select(Collective::allreduce, 20, 8192);
    EXPECT_EQ(miss.name, coll::recommended_algorithm(Collective::allreduce, 20, 8192).name);
    EXPECT_EQ(tr.table_hits(), 1u);
    EXPECT_EQ(tr.table_misses(), 1u);
    const harness::RunResult r = tr.run(Collective::allreduce, 16, 8192);
    EXPECT_GT(r.seconds, 0.0);
    const harness::VerifiedRun v = tr.run_verified(Collective::allreduce, 16, 8192);
    EXPECT_TRUE(v.ok) << v.error;
    EXPECT_NE(v.digest, 0u);
  }
  {  // error: a miss throws, a hit does not.
    harness::TunedRunner tr(profile, table, tune::MissPolicy::error);
    EXPECT_NO_THROW((void)tr.select(Collective::allreduce, 16, 8192));
    EXPECT_THROW((void)tr.select(Collective::allreduce, 20, 8192), std::runtime_error);
  }
  {  // tune_on_miss: the miss tunes the cell once; later queries hit.
    harness::TunedRunner tr(profile, table, tune::MissPolicy::tune_on_miss,
                            small_options());
    const auto& filled = tr.select(Collective::allreduce, 20, 8192);
    EXPECT_TRUE(coll::has_algorithm(Collective::allreduce, filled.name));
    EXPECT_EQ(tr.table_misses(), 1u);
    (void)tr.select(Collective::allreduce, 20, 1 << 20);  // other size, same cell
    EXPECT_EQ(tr.table_misses(), 1u);
    EXPECT_EQ(tr.table_hits(), 1u);
    EXPECT_NE(tr.table().cell(profile.name, Collective::allreduce, 20), nullptr);
    // The filled cell agrees with tuning that cell directly.
    harness::Runner fresh(profile);
    EXPECT_EQ(*tr.table().cell(profile.name, Collective::allreduce, 20),
              tune::Tuner(small_options()).tune_cell(fresh, Collective::allreduce, 20));
  }
}

// The verified path as a first-class sweep mode: element types x reduce ops,
// digests folded into the outputs, cached and fresh plans agreeing bit-for-
// bit, and worker-count independence of the whole batch.
TEST(Runner, VerifiedSweepAcrossElementTypesAndOps) {
  const net::SystemProfile profile = net::fugaku_profile({4, 4, 4});

  std::vector<harness::VerifiedQuery> queries;
  for (const runtime::ElemType elem :
       {runtime::ElemType::u32, runtime::ElemType::u64, runtime::ElemType::f32,
        runtime::ElemType::f64})
    for (const runtime::ReduceOp op :
         {runtime::ReduceOp::sum, runtime::ReduceOp::min, runtime::ReduceOp::max})
      for (const char* algo : {"bine_two_trans", "recursive_doubling"})
        queries.push_back({Collective::allreduce, algo, 16, 4096, elem, op});

  harness::Runner cached(profile);
  cached.use_private_schedule_cache();
  const std::vector<harness::VerifiedRun> serial = cached.sweep_verified(queries, 1);
  ASSERT_EQ(serial.size(), queries.size());
  std::set<u64> digests;
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(serial[i].ok) << serial[i].error << " query " << i;
    EXPECT_NE(serial[i].digest, 0u);
    digests.insert(serial[i].digest);
  }
  // Different (elem, op) pairs produce different final states: the digest
  // actually discriminates. recursive_doubling and bine_two_trans compute
  // the same collective, so expect one digest per (elem, op) pair.
  EXPECT_EQ(digests.size(), 12u);

  // Worker-count independence, digests included.
  const std::vector<harness::VerifiedRun> sharded = cached.sweep_verified(queries, 4);
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(sharded[i].ok, serial[i].ok);
    EXPECT_EQ(sharded[i].digest, serial[i].digest) << "query " << i;
    EXPECT_EQ(sharded[i].messages, serial[i].messages);
    EXPECT_EQ(sharded[i].wire_bytes, serial[i].wire_bytes);
  }

  // Cache-off parity: the fresh-generation path reproduces every digest.
  harness::Runner uncached(profile);
  uncached.set_schedule_cache(false);
  const std::vector<harness::VerifiedRun> fresh = uncached.sweep_verified(queries, 1);
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(fresh[i].ok) << fresh[i].error;
    EXPECT_FALSE(fresh[i].used_cache);
    EXPECT_EQ(fresh[i].digest, serial[i].digest) << "query " << i;
  }
}

// Refinement must not change winners when every candidate verifies (the
// common case): the correctness gate only disqualifies broken algorithms.
TEST(Tuner, RefinementPreservesWinnersWhenAllCandidatesVerify) {
  tune::TunerOptions plain = small_options();
  tune::TunerOptions refined = small_options();
  refined.refine_top_k = 3;
  refined.refine_elem = runtime::ElemType::f64;
  refined.refine_op = runtime::ReduceOp::min;

  harness::Runner a(net::lumi_profile());
  harness::Runner b(net::lumi_profile());
  for (const Collective coll : kColls) {
    EXPECT_EQ(tune::Tuner(plain).tune_cell(a, coll, 16),
              tune::Tuner(refined).tune_cell(b, coll, 16))
        << to_string(coll);
  }
}

// Float x prod has no order-independent input domain: the verified path must
// reject it with an actionable error, never fail a correct algorithm with a
// spurious data mismatch -- and a refinement configured that way must be
// rejected at Tuner construction, before it disqualifies every candidate.
TEST(Runner, FloatProductVerificationIsRejectedUpFront) {
  harness::Runner runner(net::lumi_profile());
  const auto& entry = coll::find_algorithm(Collective::allreduce, "recursive_doubling");
  for (const runtime::ElemType elem : {runtime::ElemType::f32, runtime::ElemType::f64}) {
    const harness::VerifiedRun v = runner.run_verified(
        Collective::allreduce, entry, 16, 4096, 1, elem, runtime::ReduceOp::prod);
    EXPECT_FALSE(v.ok);
    EXPECT_NE(v.error.find("prod"), std::string::npos) << v.error;
  }
  // Integral prod stays supported (wrapping arithmetic is exact).
  const harness::VerifiedRun ok = runner.run_verified(
      Collective::allreduce, entry, 16, 4096, 1, runtime::ElemType::u64,
      runtime::ReduceOp::prod);
  EXPECT_TRUE(ok.ok) << ok.error;

  tune::TunerOptions bad = small_options();
  bad.refine_top_k = 2;
  bad.refine_elem = runtime::ElemType::f32;
  bad.refine_op = runtime::ReduceOp::prod;
  EXPECT_THROW(tune::Tuner{bad}, std::invalid_argument);
}

// A cell naming a profile absent from the fingerprint map could never be
// checked against the consumer's machine model -- the load must reject it
// rather than serve it unguarded.
TEST(DecisionTable, CellWithoutFingerprintedProfileIsRejected) {
  EXPECT_THROW(
      {
        try {
          (void)tune::DecisionTable::parse(
              R"({"format": "bine-decision-table", "version": 1, "profiles": {},
                  "cells": [{"profile": "ghost", "collective": "allreduce", "p": 8,
                             "intervals": [{"lo": 0, "hi": -1, "algorithm": "ring"}]}]})");
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find("fingerprint map"), std::string::npos);
          throw;
        }
      },
      std::runtime_error);
}

// Negative byte counts must clamp to the first interval, not crash the
// tune-on-miss path.
TEST(TunedRunner, NegativeBytesClampToFirstInterval) {
  const net::SystemProfile profile = net::lumi_profile();
  const tune::DecisionTable table =
      tune::Tuner(small_options()).build({profile}, {Collective::allreduce}, {16});
  harness::TunedRunner tr(profile, table, tune::MissPolicy::tune_on_miss,
                          small_options());
  const auto& hit = tr.select(Collective::allreduce, 16, -5);
  EXPECT_EQ(hit.name,
            table.cell(profile.name, Collective::allreduce, 16)->front().algorithm);
  const auto& filled = tr.select(Collective::allreduce, 20, -5);  // miss + tune
  EXPECT_TRUE(coll::has_algorithm(Collective::allreduce, filled.name));
}

TEST(TuneJson, ParserRejectsMalformedDocuments) {
  EXPECT_THROW((void)tune::json::Value::parse("{"), std::runtime_error);
  EXPECT_THROW((void)tune::json::Value::parse("{} garbage"), std::runtime_error);
  EXPECT_THROW((void)tune::json::Value::parse(R"({"a": 01x})"), std::runtime_error);
  EXPECT_THROW((void)tune::json::Value::parse(R"("unterminated)"), std::runtime_error);
  // Truncations at every structural boundary.
  EXPECT_THROW((void)tune::json::Value::parse(R"({"a")"), std::runtime_error);
  EXPECT_THROW((void)tune::json::Value::parse(R"({"a":)"), std::runtime_error);
  EXPECT_THROW((void)tune::json::Value::parse(R"({"a": [1,)"), std::runtime_error);
  EXPECT_THROW((void)tune::json::Value::parse(R"({"a": "x\)"), std::runtime_error);
  EXPECT_THROW((void)tune::json::Value::parse(R"({"a": "\u00)"), std::runtime_error);
  EXPECT_THROW((void)tune::json::Value::parse("tru"), std::runtime_error);
  // Duplicate keys would make find() order-dependent; rejected outright.
  EXPECT_THROW((void)tune::json::Value::parse(R"({"a": 1, "a": 2})"),
               std::runtime_error);
  // Overflowing literals saturate to infinity in strtod; non-finite numbers
  // are damage, not data.
  EXPECT_THROW((void)tune::json::Value::parse(R"({"a": 1e999})"), std::runtime_error);
  EXPECT_THROW((void)tune::json::Value::parse(R"({"a": -1.5e999})"),
               std::runtime_error);
  // Failures carry the byte position (the "position-bearing" contract).
  try {
    (void)tune::json::Value::parse(R"({"k": 1, "k": 2})");
    FAIL() << "duplicate key accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("at byte"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("duplicate"), std::string::npos) << e.what();
  }
  const tune::json::Value v =
      tune::json::Value::parse(R"({"a": [1, -2.5, "x\n", true, null]})");
  const auto& arr = v.at("a", "doc").as_array("a");
  ASSERT_EQ(arr.size(), 5u);
  EXPECT_EQ(arr[0].as_i64("n"), 1);
  EXPECT_DOUBLE_EQ(arr[1].as_double("d"), -2.5);
  EXPECT_EQ(arr[2].as_string("s"), "x\n");
  EXPECT_TRUE(arr[3].as_bool("b"));
}

// --- adaptive grid refinement (crossover bisection) -------------------------

// Bisection is a no-op when the grid has no crossover to bracket: a
// single-point grid has no adjacent pairs, so any depth must emit exactly
// the depth-0 table (the refinement loop may not perturb grid or winners
// when it inserts nothing).
TEST(TunerBisect, NoOpWithoutCrossovers) {
  tune::TunerOptions base = small_options();
  base.size_grid = {8192};
  tune::TunerOptions deep = base;
  deep.bisect_depth = 5;
  EXPECT_EQ(tune::Tuner(base).build({net::lumi_profile()}, kColls, kNodes).dump(),
            tune::Tuner(deep).build({net::lumi_profile()}, kColls, kNodes).dump());
}

// Bisection only moves interval boundaries INTO the bracket between the base
// grid points whose winners differ: every refined boundary lies strictly
// inside some base bracket or on a base grid point, the partition stays
// valid (set_cell enforces that), and the winner at every base grid point
// is unchanged.
TEST(TunerBisect, TightensCrossoversWithinBrackets) {
  tune::TunerOptions coarse = small_options();
  coarse.size_grid = {32, 8388608};  // one huge bracket: crossovers likely inside
  tune::TunerOptions refined_opts = coarse;
  refined_opts.bisect_depth = 3;

  const tune::DecisionTable base =
      tune::Tuner(coarse).build({net::lumi_profile()}, kColls, kNodes);
  const tune::DecisionTable refined =
      tune::Tuner(refined_opts).build({net::lumi_profile()}, kColls, kNodes);

  for (const auto& [key, intervals] : refined.cells()) {
    const auto* base_cell = base.cell(key.profile, key.coll, key.p);
    ASSERT_NE(base_cell, nullptr);
    // Boundaries (other than 0/open-end) must lie within the coarse grid's
    // span -- bisection never extrapolates.
    for (const tune::SizeInterval& iv : intervals) {
      if (iv.lo_bytes == 0) continue;
      EXPECT_GE(iv.lo_bytes, coarse.size_grid.front());
      EXPECT_LE(iv.lo_bytes, coarse.size_grid.back());
    }
    // Winners at the base grid points never change: refinement adds
    // resolution between them, it does not re-rank them.
    for (const i64 size : coarse.size_grid) {
      const std::string* w_base = base.lookup(key.profile, key.coll, key.p, size);
      const std::string* w_ref = refined.lookup(key.profile, key.coll, key.p, size);
      ASSERT_NE(w_base, nullptr);
      ASSERT_NE(w_ref, nullptr);
      EXPECT_EQ(*w_base, *w_ref);
    }
    // At least as many crossovers resolved as the coarse table knew about.
    EXPECT_GE(intervals.size(), base_cell->size());
  }
}

// Refined boundaries are exact at every size the bisection evaluated: probe
// the refined table's own boundaries against a direct argmin.
TEST(TunerBisect, BoundaryWinnersMatchArgmin) {
  tune::TunerOptions opts = small_options();
  opts.size_grid = {256, 2097152};
  opts.bisect_depth = 4;
  const tune::DecisionTable table =
      tune::Tuner(opts).build({net::lumi_profile()}, {Collective::allreduce}, {16});

  harness::Runner runner(net::lumi_profile());
  const auto* cell = table.cell("lumi", Collective::allreduce, 16);
  ASSERT_NE(cell, nullptr);
  for (const tune::SizeInterval& iv : *cell) {
    if (iv.lo_bytes == 0) continue;
    // The interval's lower bound was an evaluated grid point, so the stored
    // winner there must equal the exhaustive argmin.
    double best = std::numeric_limits<double>::infinity();
    std::string best_name;
    for (const auto* cand : tune::Tuner::candidates(Collective::allreduce, 16)) {
      const double s =
          runner.run(Collective::allreduce, *cand, 16, iv.lo_bytes).seconds;
      if (s < best) {
        best = s;
        best_name = cand->name;
      }
    }
    EXPECT_EQ(iv.algorithm, best_name) << "at " << iv.lo_bytes;
  }
}

// Sharded and serial builds stay byte-identical with bisection enabled.
TEST(TunerBisect, ShardedBuildIsDeterministic) {
  tune::TunerOptions a = small_options(1);
  a.bisect_depth = 2;
  tune::TunerOptions b = small_options(4);
  b.bisect_depth = 2;
  EXPECT_EQ(
      tune::Tuner(a).build({net::lumi_profile(), net::mn5_profile()}, kColls, kNodes)
          .dump(),
      tune::Tuner(b).build({net::lumi_profile(), net::mn5_profile()}, kColls, kNodes)
          .dump());
}
