// Compiled execution engine tests: compiled-vs-nested-reference parity
// across the whole registry (buffers, contributor sets, message accounting),
// cached-plan/direct-lowering equivalence, duplicate-contribution detection
// parity, threaded-executor determinism, Runner's verified-execution path on
// all four topology-family profiles with the cache on and off, and
// shared-process-cache hits across Runner instances.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "coll/registry.hpp"
#include "harness/runner.hpp"
#include "net/profiles.hpp"
#include "runtime/compiled_executor.hpp"
#include "runtime/exec_plan.hpp"
#include "runtime/executor.hpp"
#include "runtime/threaded_executor.hpp"
#include "runtime/verify.hpp"
#include "sched/schedule_cache.hpp"

using namespace bine;

namespace {

std::vector<std::vector<u64>> make_inputs(i64 p, i64 elems) {
  std::vector<std::vector<u64>> in(static_cast<size_t>(p));
  for (i64 r = 0; r < p; ++r) {
    in[static_cast<size_t>(r)].resize(static_cast<size_t>(elems));
    for (i64 e = 0; e < elems; ++e)
      in[static_cast<size_t>(r)][static_cast<size_t>(e)] =
          static_cast<u64>(r) * 7919u + static_cast<u64>(e);
  }
  return in;
}

/// Bit-exact comparison of a compiled result against the nested reference:
/// validity, data, contributor sets, and message accounting.
void expect_matches_reference(const runtime::ExecResult<u64>& ref,
                              const runtime::CompiledExecResult<u64>& got,
                              i64 p, i64 nblocks, const std::string& what) {
  EXPECT_EQ(got.messages, ref.messages) << what;
  EXPECT_EQ(got.wire_bytes, ref.wire_bytes) << what;
  for (Rank r = 0; r < p; ++r)
    for (i64 b = 0; b < nblocks; ++b) {
      const auto& slot = ref.ranks[static_cast<size_t>(r)].slots[static_cast<size_t>(b)];
      ASSERT_EQ(got.is_valid(r, b), slot.valid)
          << what << " rank " << r << " block " << b;
      if (!slot.valid) continue;
      const auto data = got.block(r, b);
      ASSERT_EQ(std::vector<u64>(data.begin(), data.end()), slot.data)
          << what << " rank " << r << " block " << b;
      EXPECT_TRUE(got.contributors(r, b) == slot.contributors)
          << what << " rank " << r << " block " << b;
    }
}

}  // namespace

// The tentpole invariant: for EVERY registered algorithm of every collective
// (topology-specialized torus/hierarchical generators included), the compiled
// executor must be bit-exact with the nested reference -- and must satisfy
// the collective's postcondition through the compiled verify overload.
TEST(ExecEngine, CompiledMatchesReferenceAcrossRegistry) {
  for (const sched::Collective coll : coll::all_collectives()) {
    for (const auto& entry : coll::algorithms_for(coll)) {
      for (const i64 p : {16, 24}) {
        if (entry.pow2_only && !is_pow2(p)) continue;
        SCOPED_TRACE(std::string(to_string(coll)) + "/" + entry.name +
                     " p=" + std::to_string(p));
        coll::Config cfg;
        cfg.p = p;
        cfg.elem_count = 3 * p + 5;  // non-divisible block sizes included
        cfg.elem_size = 8;
        const sched::Schedule sch = entry.make(cfg);
        const auto inputs = make_inputs(p, cfg.elem_count);

        const auto ref = runtime::execute_reference<u64>(sch, runtime::ReduceOp::sum, inputs);
        const runtime::ExecPlan plan = runtime::ExecPlan::lower(sch);
        const auto got = runtime::execute<u64>(plan, runtime::ReduceOp::sum, inputs);
        expect_matches_reference(ref, got, sch.p, sch.nblocks, entry.name);
        EXPECT_EQ(runtime::verify<u64>(plan, runtime::ReduceOp::sum, inputs, got), "");
      }
    }
  }
}

// A plan re-materialized from the cache's execution overlay must be
// indistinguishable from one lowered directly off the nested schedule, at
// any vector size -- the execution analogue of resolve-vs-lower parity.
TEST(ExecEngine, PlanFromSizeFreeMatchesDirectLowering) {
  const struct {
    sched::Collective coll;
    const char* name;
  } cases[] = {
      {sched::Collective::allreduce, "recursive_doubling"},
      {sched::Collective::allreduce, "rabenseifner"},
      {sched::Collective::allreduce, "bine_two_trans"},
      {sched::Collective::allreduce, "ring"},
      {sched::Collective::bcast, "bine_scatter_allgather"},
      {sched::Collective::reduce, "bine_rs_gather"},
      {sched::Collective::reduce_scatter, "bine_block"},
      {sched::Collective::allgather, "bruck"},
      {sched::Collective::gather, "bine"},
      {sched::Collective::alltoall, "bruck"},
  };
  for (const i64 p : {16, 24}) {
    for (const auto& c : cases) {
      const auto& entry = coll::find_algorithm(c.coll, c.name);
      if (entry.pow2_only && !is_pow2(p)) continue;
      SCOPED_TRACE(std::string(c.name) + " p=" + std::to_string(p));

      coll::Config build_cfg;
      build_cfg.p = p;
      build_cfg.elem_count = 5 * p + 1;  // build size != any resolved size
      build_cfg.elem_size = 8;
      const auto sf = std::make_shared<const sched::SizeFreeSchedule>(
          sched::SizeFreeSchedule::from(entry.make(build_cfg)));
      ASSERT_TRUE(sf->size_independent);

      const runtime::ExecSkeleton* skeleton = nullptr;
      for (const i64 elem_count : {p, 3 * p + 5, i64{8192}}) {
        coll::Config cfg = build_cfg;
        cfg.elem_count = elem_count;
        const runtime::ExecPlan direct = runtime::ExecPlan::lower(entry.make(cfg));
        const runtime::ExecPlan cached = runtime::ExecPlan::from_size_free(
            sf, c.coll, cfg.root, cfg.elem_count, cfg.elem_size);
        const auto eq = [](const auto& a, const auto& b) {
          return std::equal(a.begin(), a.end(), b.begin(), b.end());
        };
        EXPECT_TRUE(eq(cached.step_begin, direct.step_begin));
        EXPECT_TRUE(eq(cached.to, direct.to));
        EXPECT_TRUE(eq(cached.from, direct.from));
        EXPECT_TRUE(eq(cached.reduce, direct.reduce));
        EXPECT_EQ(cached.op_bytes, direct.op_bytes);
        EXPECT_TRUE(eq(cached.block_begin, direct.block_begin));
        EXPECT_TRUE(eq(cached.ids, direct.ids));
        EXPECT_EQ(cached.block_off, direct.block_off);
        EXPECT_TRUE(eq(cached.run_begin, direct.run_begin));
        EXPECT_TRUE(eq(cached.direct, direct.direct));
        EXPECT_TRUE(eq(cached.fused, direct.fused));
        EXPECT_EQ(cached.stage_elem_off, direct.stage_elem_off);
        EXPECT_EQ(cached.total_wire_bytes, direct.total_wire_bytes);
        // The finalized skeleton is built once on the entry and shared by
        // every later re-materialization (the ~13%-per-cell finalize() cost
        // the cache entry now absorbs).
        ASSERT_TRUE(cached.skeleton);
        if (!skeleton) skeleton = cached.skeleton.get();
        EXPECT_EQ(cached.skeleton.get(), skeleton);

        const auto inputs = make_inputs(p, elem_count);
        const auto a = runtime::execute<u64>(direct, runtime::ReduceOp::sum, inputs);
        const auto b = runtime::execute<u64>(cached, runtime::ReduceOp::sum, inputs);
        EXPECT_EQ(a.data, b.data);
        EXPECT_EQ(a.contrib, b.contrib);
        EXPECT_EQ(a.valid, b.valid);
        EXPECT_EQ(a.messages, b.messages);
        EXPECT_EQ(a.wire_bytes, b.wire_bytes);
      }
    }
  }
}

// The data-dependent correctness hazard (Appendix C): a schedule that folds
// the same contributor twice must throw in the compiled engine exactly as it
// does in both nested references -- sequentially and threaded.
TEST(ExecEngine, DuplicateContributionDetectionParity) {
  coll::Config cfg;
  cfg.p = 4;
  cfg.elem_count = 8;
  sched::Schedule sch = coll::make_base(sched::Collective::reduce, cfg, "broken",
                                        sched::BlockSpace::per_vector);
  sch.add_exchange(0, 1, 0, sched::BlockSet::all(4), true);
  sch.add_exchange(1, 1, 0, sched::BlockSet::all(4), true);
  sch.add_exchange(0, 3, 2, sched::BlockSet::all(4), true);
  sch.normalize_steps();
  const auto in = make_inputs(4, 8);
  EXPECT_THROW(runtime::execute_reference<u64>(sch, runtime::ReduceOp::sum, in),
               std::runtime_error);
  EXPECT_THROW(runtime::execute_threaded_reference<u64>(sch, runtime::ReduceOp::sum, in),
               std::runtime_error);
  const runtime::ExecPlan plan = runtime::ExecPlan::lower(sch);
  EXPECT_THROW((void)runtime::execute<u64>(plan, runtime::ReduceOp::sum, in),
               std::runtime_error);
  EXPECT_THROW((void)runtime::execute<u64>(plan, runtime::ReduceOp::sum, in, 4),
               std::runtime_error);
}

// Structurally broken schedules must be rejected at plan-lowering time (the
// compiled analogue of the reference's runtime validate-and-throw).
TEST(ExecEngine, LoweringRejectsInvalidSchedules) {
  coll::Config cfg;
  cfg.p = 4;
  cfg.elem_count = 8;
  sched::Schedule sch = coll::make_base(sched::Collective::bcast, cfg, "unmatched",
                                        sched::BlockSpace::per_vector);
  // Hand-craft a send with no matching recv.
  sch.steps[0].resize(1);
  sch.steps[0][0].ops.push_back(
      {sched::OpKind::send, 1, sched::BlockSet::all(4), 8 * 4, 1});
  sch.normalize_steps();
  EXPECT_THROW((void)runtime::ExecPlan::lower(sch), std::runtime_error);

  sched::Schedule coarse = coll::make_base(sched::Collective::bcast, cfg, "coarse",
                                           sched::BlockSpace::per_vector);
  coarse.detail = false;
  coarse.normalize_steps();
  EXPECT_THROW((void)runtime::ExecPlan::lower(coarse), std::runtime_error);
}

// Threaded phase fan-out must be bit-identical to the sequential pass for
// the BINE_THREADS values CI pins (1 and 4).
TEST(ExecEngine, ThreadedExecutionIsDeterministic) {
  const std::vector<std::pair<sched::Collective, const char*>> cases = {
      {sched::Collective::allreduce, "bine_two_trans"},
      {sched::Collective::allreduce, "recursive_doubling"},
      {sched::Collective::reduce_scatter, "bine_permute"},
      {sched::Collective::allgather, "bine_send"},
      {sched::Collective::alltoall, "bine"},
      {sched::Collective::bcast, "bine"},
  };
  for (const auto& [coll, name] : cases) {
    // 53 elements stays below the executor's parallel grain (sequential
    // fallback under threads=4); 8192 crosses it, so the parallel_for fan-out
    // genuinely runs.
    for (const i64 elems : {i64{53}, i64{8192}}) {
      SCOPED_TRACE(std::string(name) + " elems=" + std::to_string(elems));
      coll::Config cfg;
      cfg.p = 16;
      cfg.elem_count = elems;
      cfg.elem_size = 8;
      const sched::Schedule sch = coll::find_algorithm(coll, name).make(cfg);
      const runtime::ExecPlan plan = runtime::ExecPlan::lower(sch);
      const auto inputs = make_inputs(cfg.p, cfg.elem_count);
      const auto seq = runtime::execute<u64>(plan, runtime::ReduceOp::sum, inputs, 1);
      const auto thr = runtime::execute<u64>(plan, runtime::ReduceOp::sum, inputs, 4);
      EXPECT_EQ(seq.data, thr.data);
      EXPECT_EQ(seq.contrib, thr.contrib);
      EXPECT_EQ(seq.valid, thr.valid);
      EXPECT_EQ(seq.messages, thr.messages);
      EXPECT_EQ(seq.wire_bytes, thr.wire_bytes);
      EXPECT_EQ(runtime::verify<u64>(plan, runtime::ReduceOp::sum, inputs, thr), "");
    }
  }
}

// Floating-point min/max are not bit-commutative (+/-0.0 ties resolve to
// the FIRST operand), so the fused symmetric-exchange kernel must evaluate
// each direction with its own operand order. Signed zeros compare equal
// under ==, hence the bitwise comparison.
TEST(ExecEngine, FusedSymmetricExchangeIsBitExactForFloatMinMax) {
  coll::Config cfg;
  cfg.p = 8;
  cfg.elem_count = 64;
  cfg.elem_size = 8;
  const sched::Schedule sch =
      coll::find_algorithm(sched::Collective::allreduce, "recursive_doubling").make(cfg);
  const runtime::ExecPlan plan = runtime::ExecPlan::lower(sch);
  ASSERT_TRUE(std::find(plan.fused.begin(), plan.fused.end(), 1) != plan.fused.end())
      << "recursive doubling exchanges should fuse";

  std::vector<std::vector<double>> in(8);
  for (i64 r = 0; r < 8; ++r) {
    in[static_cast<size_t>(r)].resize(64);
    for (i64 e = 0; e < 64; ++e)  // alternating +0.0 / -0.0 tie patterns
      in[static_cast<size_t>(r)][static_cast<size_t>(e)] = ((r + e) % 2 == 0) ? 0.0 : -0.0;
  }
  for (const runtime::ReduceOp op : {runtime::ReduceOp::min, runtime::ReduceOp::max}) {
    SCOPED_TRACE(to_string(op));
    const auto ref = runtime::execute_reference<double>(sch, op, in);
    const auto got = runtime::execute<double>(plan, op, in);
    for (Rank r = 0; r < 8; ++r)
      for (i64 b = 0; b < 8; ++b) {
        const auto& slot = ref.ranks[static_cast<size_t>(r)].slots[static_cast<size_t>(b)];
        ASSERT_TRUE(slot.valid);
        const auto data = got.block(r, b);
        ASSERT_EQ(data.size(), slot.data.size());
        EXPECT_EQ(std::memcmp(data.data(), slot.data.data(), data.size() * sizeof(double)),
                  0)
            << "rank " << r << " block " << b;
      }
  }
}

// Runner::run_verified must succeed -- with identical accounting -- across
// every topology-family profile, cache on and off, threads 1 and 4. The
// cached path (plan from the shared size-free IR) and the fresh path (plan
// lowered off a new schedule) must agree exactly.
TEST(ExecEngine, RunnerVerifiedExecutionAcrossProfilesAndCacheModes) {
  std::vector<net::SystemProfile> profiles;
  profiles.push_back(net::lumi_profile());
  profiles.push_back(net::leonardo_profile());
  profiles.push_back(net::fugaku_profile({4, 4, 4}));
  profiles.push_back(net::multigpu_profile());

  const std::vector<std::pair<sched::Collective, const char*>> cases = {
      {sched::Collective::allreduce, "bine_two_trans"},
      {sched::Collective::allreduce, "rabenseifner"},
      {sched::Collective::bcast, "bine"},
      {sched::Collective::reduce_scatter, "bine_block"},
      {sched::Collective::alltoall, "bruck"},
  };
  for (auto& profile : profiles) {
    harness::Runner cached(profile);
    harness::Runner uncached(profile);
    cached.set_schedule_cache(true);
    cached.use_private_schedule_cache();
    uncached.set_schedule_cache(false);
    for (const auto& [coll, name] : cases) {
      const auto& entry = coll::find_algorithm(coll, name);
      for (const i64 threads : {1, 4}) {
        SCOPED_TRACE(profile.name + "/" + name + " threads=" + std::to_string(threads));
        const harness::VerifiedRun a = cached.run_verified(coll, entry, 64, 16384, threads);
        const harness::VerifiedRun b =
            uncached.run_verified(coll, entry, 64, 16384, threads);
        EXPECT_TRUE(a.ok) << a.error;
        EXPECT_TRUE(b.ok) << b.error;
        EXPECT_TRUE(a.used_cache);
        EXPECT_FALSE(b.used_cache);
        EXPECT_EQ(a.messages, b.messages);
        EXPECT_EQ(a.wire_bytes, b.wire_bytes);
      }
    }
    const auto stats = cached.schedule_cache_stats();
    EXPECT_GT(stats.hits, 0u) << profile.name;  // threads=4 rerun hits the entry
  }
}

// The acceptance criterion for the process-wide cache: a second Runner in
// the same process -- even on a different system profile -- gets pure hits
// for cells a first Runner already built.
TEST(ExecEngine, SecondRunnerHitsProcessWideScheduleCache) {
  const auto& entry =
      coll::find_algorithm(sched::Collective::allreduce, "bine_two_trans");

  harness::Runner first(net::lumi_profile());
  first.set_schedule_cache(true);
  (void)first.run(sched::Collective::allreduce, entry, 64, 16384);
  ASSERT_TRUE(first.schedule_cache_enabled());

  const auto before = sched::process_schedule_cache().stats();
  harness::Runner second(net::leonardo_profile());  // different profile, same cache
  second.set_schedule_cache(true);
  (void)second.run(sched::Collective::allreduce, entry, 64, 16384);
  const harness::VerifiedRun v =
      second.run_verified(sched::Collective::allreduce, entry, 64, 16384);
  EXPECT_TRUE(v.ok) << v.error;
  EXPECT_TRUE(v.used_cache);
  const auto after = sched::process_schedule_cache().stats();
  EXPECT_EQ(after.misses, before.misses);     // nothing regenerated...
  EXPECT_GE(after.hits, before.hits + 2u);    // ...simulate AND execute both hit
}

// Pair-tiling: a delivery whose read cells only PARTIALLY overlap the cells
// written at its sender this step must stage exactly the overlapping tile --
// the rest reads the sender's live buffer in place -- while staying bit-exact
// with the nested reference.
TEST(ExecEngine, PairTilingStagesOnlyOverlappingTiles) {
  coll::Config cfg;
  cfg.p = 4;
  cfg.elem_count = 8;  // nblocks = 4 -> 2 elems per block
  cfg.elem_size = 8;
  sched::Schedule sch = coll::make_base(sched::Collective::allreduce, cfg, "tiled",
                                        sched::BlockSpace::per_vector);
  // One step, hand-built for partial overlap:
  //   0 -> 1 reduce {0,1,2,3}: read cells (0, 0..3); only (0, 2) is written
  //                            below -> middle tile stages, the rest in place
  //   1 -> 0 reduce {2}      : rank 1 is fully written above -> stages
  //   2 -> 3 reduce {1,2}    : rank 2 only has block 0 written -> direct
  //   3 -> 2 reduce {0}      : rank 3 only has blocks 1,2 written -> direct
  sch.add_exchange(0, 0, 1, sched::BlockSet::all(4), true);
  sch.add_exchange(0, 1, 0, sched::BlockSet::single(2), true);
  sch.add_exchange(0, 2, 3, sched::BlockSet::run(1, 2), true);
  sch.add_exchange(0, 3, 2, sched::BlockSet::single(0), true);
  sch.normalize_steps();

  const runtime::ExecPlan plan = runtime::ExecPlan::lower(sch);
  ASSERT_EQ(plan.num_ops(), 4u);
  for (size_t j = 0; j < 4; ++j) {
    SCOPED_TRACE("delivery to " + std::to_string(plan.to[j]));
    std::vector<int> mask;
    for (auto k = plan.block_begin[j]; k < plan.block_begin[j + 1]; ++k)
      mask.push_back(plan.staged_id[k]);
    if (plan.to[j] == 1) {  // 0 -> 1: only id 2 overlaps
      EXPECT_FALSE(plan.direct[j]);
      EXPECT_EQ(mask, (std::vector<int>{0, 0, 1, 0}));
    } else if (plan.to[j] == 0) {  // 1 -> 0: fully overlapping
      EXPECT_FALSE(plan.direct[j]);
      EXPECT_EQ(mask, (std::vector<int>{1}));
    } else {  // 2 -> 3 and 3 -> 2: no overlap at all
      EXPECT_TRUE(plan.direct[j]);
      EXPECT_EQ(std::count(mask.begin(), mask.end(), 1), 0);
    }
    EXPECT_FALSE(plan.fused[j]);  // id lists differ: no symmetric fusion
  }
  // 2 staged blocks x 2 elems x 8 bytes; without tiling all 5 non-direct
  // blocks would copy (80 bytes).
  EXPECT_EQ(plan.stage_bytes, 32);

  const auto inputs = make_inputs(cfg.p, cfg.elem_count);
  const auto ref = runtime::execute_reference<u64>(sch, runtime::ReduceOp::sum, inputs);
  for (const i64 threads : {i64{1}, i64{4}}) {
    const auto got = runtime::execute<u64>(plan, runtime::ReduceOp::sum, inputs, threads);
    expect_matches_reference(ref, got, sch.p, sch.nblocks,
                             "tiled threads=" + std::to_string(threads));
    EXPECT_EQ(got.stage_bytes, plan.stage_bytes);
  }
}

// Every registered algorithm's plan executes fully zero-copy: the direct /
// fused / pair-tiling analysis leaves nothing for the stage buffers. This is
// the ROADMAP's "stage-copy bytes ~= 0" target, promoted to an invariant.
TEST(ExecEngine, RegistryPlansExecuteZeroCopy) {
  for (const sched::Collective coll : coll::all_collectives()) {
    for (const auto& entry : coll::algorithms_for(coll)) {
      for (const i64 p : {16, 24}) {
        if (entry.pow2_only && !is_pow2(p)) continue;
        coll::Config cfg;
        cfg.p = p;
        cfg.elem_count = 3 * p + 5;
        cfg.elem_size = 8;
        const runtime::ExecPlan plan = runtime::ExecPlan::lower(entry.make(cfg));
        EXPECT_EQ(plan.stage_bytes, 0)
            << to_string(coll) << "/" << entry.name << " p=" << p;
      }
    }
  }
}
