// Sweep-engine tests: golden parity between the declarative plans the ported
// bench drivers run and the pre-refactor driver loops (Runner::sweep query
// lists, direct best_of/run calls, select()+run dispatch), asserted
// bit-identically across shard widths {1, 4} and schedule cache on/off; the
// planner's cell dedup; canonical row ordering and JSON stability; the
// custom-backend placeholder axes; NodeAxis per-collective extension; and
// the verified-execution backend's digest parity with Runner::run_verified.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "coll/registry.hpp"
#include "exp/paper_plans.hpp"
#include "exp/report.hpp"
#include "exp/sweep.hpp"
#include "harness/runner.hpp"
#include "net/profiles.hpp"
#include "tune/tuner.hpp"

using namespace bine;
using sched::Collective;

namespace {

// Small grid shared by the golden tests: fast, but still spanning two node
// counts (one non-pow2 would reject some candidates -- covered separately),
// two sizes and several collectives.
const std::vector<i64> kNodes = {8, 16};
const std::vector<i64> kSizes = {256, 16384};
const std::vector<Collective> kColls = {Collective::allreduce, Collective::bcast,
                                        Collective::allgather};

void expect_metrics_eq(const exp::Metrics& m, const std::string& name,
                       const harness::RunResult& r) {
  EXPECT_EQ(m.algorithm, name);
  EXPECT_EQ(m.seconds, r.seconds);  // bitwise
  EXPECT_EQ(m.global_bytes, r.global_bytes);
  EXPECT_EQ(m.total_bytes, r.total_bytes);
  EXPECT_EQ(m.messages, r.messages);
  EXPECT_EQ(m.steps, r.steps);
}

}  // namespace

// The pre-refactor binomial-table loop (bench_common.hpp's query list fed to
// Runner::sweep) vs the ported plan: bit-identical metrics for every cell,
// across shard widths and cache modes.
TEST(SweepEngine, GoldenParityBinomialTable) {
  for (const bool cache : {true, false}) {
    for (const i64 threads : {i64{1}, i64{4}}) {
      exp::SweepPlan plan =
          exp::paper::binomial_table(net::lumi_profile(), kNodes, kSizes);
      plan.systems[0].schedule_cache = cache;
      plan.threads = threads;
      const exp::SweepResult result = exp::run(plan);

      // The pre-refactor loop, verbatim: paired bine/binomial queries in
      // collective-major order through Runner::sweep.
      harness::Runner runner(net::lumi_profile());
      runner.set_schedule_cache(cache);
      std::vector<harness::SweepQuery> queries;
      for (const Collective coll : coll::all_collectives())
        for (const i64 nodes : kNodes)
          for (const i64 size : kSizes) {
            queries.push_back({coll, nodes, size, harness::SweepQuery::Kind::bine,
                               /*contiguous_only=*/true});
            queries.push_back(
                {coll, nodes, size, harness::SweepQuery::Kind::binomial, false});
          }
      const auto golden = runner.sweep(queries);

      size_t q = 0;
      for (size_t ci = 0; ci < result.colls.size(); ++ci)
        for (size_t ni = 0; ni < kNodes.size(); ++ni)
          for (size_t si = 0; si < kSizes.size(); ++si) {
            expect_metrics_eq(result.at(0, ci, ni, si, 0), golden[q].first,
                              golden[q].second);
            expect_metrics_eq(result.at(0, ci, ni, si, 1), golden[q + 1].first,
                              golden[q + 1].second);
            q += 2;
          }
      EXPECT_EQ(q, golden.size());
    }
  }
}

// The heatmap/boxplot series (bine vs sota) vs the pre-refactor query list.
TEST(SweepEngine, GoldenParitySotaSeries) {
  exp::SweepPlan plan =
      exp::paper::sota_boxplots(net::lumi_profile(), kNodes, kSizes, kColls);
  const exp::SweepResult result = exp::run(plan);

  harness::Runner runner(net::lumi_profile());
  std::vector<harness::SweepQuery> queries;
  for (const Collective coll : kColls)
    for (const i64 nodes : kNodes)
      for (const i64 size : kSizes) {
        queries.push_back({coll, nodes, size, harness::SweepQuery::Kind::bine, false});
        queries.push_back({coll, nodes, size, harness::SweepQuery::Kind::sota, false});
      }
  const auto golden = runner.sweep(queries);

  size_t q = 0;
  for (size_t ci = 0; ci < kColls.size(); ++ci)
    for (size_t ni = 0; ni < kNodes.size(); ++ni)
      for (size_t si = 0; si < kSizes.size(); ++si) {
        expect_metrics_eq(result.at(0, ci, ni, si, 0), golden[q].first,
                          golden[q].second);
        expect_metrics_eq(result.at(0, ci, ni, si, 1), golden[q + 1].first,
                          golden[q + 1].second);
        q += 2;
      }
}

// Explicit-list series (the fig11b/fig14/sec6 shape: singles + best-of) vs
// direct Runner::run / best_of calls, including the pow2 skip.
TEST(SweepEngine, GoldenParityExplicitSeries) {
  exp::SweepPlan plan;
  plan.name = "golden_explicit";
  plan.systems = {exp::SystemSpec{net::mn5_profile()}};
  plan.colls = {Collective::allgather};
  plan.series = {exp::Series::single("ring"),
                 exp::Series::single("bine_permute"),  // pow2-only
                 exp::Series::best_of("flat", {"recursive_doubling", "ring"})};
  plan.nodes.counts = {12, 16};  // 12: non-pow2, bine_permute must skip
  plan.sizes = kSizes;
  const exp::SweepResult result = exp::run(plan);

  harness::Runner runner(net::mn5_profile());
  for (size_t ni = 0; ni < plan.nodes.counts.size(); ++ni) {
    const i64 p = plan.nodes.counts[ni];
    for (size_t si = 0; si < kSizes.size(); ++si) {
      const i64 size = kSizes[si];
      expect_metrics_eq(
          result.at(0, 0, ni, si, 0), "ring",
          runner.run(Collective::allgather,
                     coll::find_algorithm(Collective::allgather, "ring"), p, size));
      if (is_pow2(p)) {
        EXPECT_FALSE(result.at(0, 0, ni, si, 1).skipped);
      } else {
        EXPECT_TRUE(result.at(0, 0, ni, si, 1).skipped);
      }
      const auto best = runner.best_of(Collective::allgather,
                                       {"recursive_doubling", "ring"}, p, size);
      expect_metrics_eq(result.at(0, 0, ni, si, 2), best.first, best.second);
    }
  }
}

// Tuned-dispatch backend vs by-hand select() + Runner::run.
TEST(SweepEngine, GoldenParityTunedDispatch) {
  tune::TunerOptions opts;
  opts.size_grid = {256, 65536};
  const tune::DecisionTable table =
      tune::Tuner(opts).build({net::lumi_profile()}, {Collective::allreduce}, kNodes);

  exp::SweepPlan plan;
  plan.name = "golden_tuned";
  plan.systems = {exp::SystemSpec{net::lumi_profile()}};
  plan.colls = {Collective::allreduce};
  plan.series = {exp::Series::tuned()};
  plan.nodes.counts = kNodes;
  plan.sizes = {256, 1024, 65536};
  plan.backend = exp::Backend::tuned_dispatch;
  plan.table = &table;
  const exp::SweepResult result = exp::run(plan);

  harness::Runner runner(net::lumi_profile());
  for (size_t ni = 0; ni < kNodes.size(); ++ni)
    for (size_t si = 0; si < plan.sizes.size(); ++si) {
      const tune::Selection sel = tune::select(table, net::lumi_profile(),
                                               Collective::allreduce, kNodes[ni],
                                               plan.sizes[si]);
      const exp::Metrics& m = result.at(0, 0, ni, si, 0);
      EXPECT_TRUE(m.from_table);
      expect_metrics_eq(m, sel.entry->name,
                        runner.run(Collective::allreduce, *sel.entry, kNodes[ni],
                                   plan.sizes[si]));
    }
}

// Verified-execution backend vs Runner::run_verified -- digests included.
TEST(SweepEngine, GoldenParityExecuteVerified) {
  exp::SweepPlan plan;
  plan.name = "golden_verified";
  plan.systems = {exp::SystemSpec{net::lumi_profile()}};
  plan.colls = {Collective::allreduce};
  plan.series = {exp::Series::single("recursive_doubling"),
                 exp::Series::single("ring")};
  plan.nodes.counts = {16};
  plan.sizes = {1024, 8192};
  plan.backend = exp::Backend::execute_verified;
  plan.elem = runtime::ElemType::u64;
  const exp::SweepResult result = exp::run(plan);

  harness::Runner runner(net::lumi_profile());
  for (size_t k = 0; k < plan.series.size(); ++k)
    for (size_t si = 0; si < plan.sizes.size(); ++si) {
      const harness::VerifiedRun v = runner.run_verified(
          Collective::allreduce,
          coll::find_algorithm(Collective::allreduce, plan.series[k].algorithms[0]),
          16, plan.sizes[si], /*threads=*/0, runtime::ElemType::u64,
          runtime::ReduceOp::sum);
      const exp::Metrics& m = result.at(0, 0, 0, si, k);
      EXPECT_TRUE(m.ok);
      EXPECT_EQ(m.ok, v.ok);
      EXPECT_EQ(m.digest, v.digest);
      EXPECT_EQ(m.messages, v.messages);
      EXPECT_EQ(m.wire_bytes, v.wire_bytes);
    }
}

// Rows -- and the serialized JSON -- are byte-identical for any shard width,
// with the cache on or off.
TEST(SweepEngine, ShardAndCacheInvariance) {
  std::string reference;
  for (const bool cache : {true, false}) {
    for (const i64 threads : {i64{1}, i64{4}}) {
      exp::SweepPlan plan =
          exp::paper::sota_boxplots(net::lumi_profile(), kNodes, kSizes, kColls);
      plan.systems[0].schedule_cache = cache;
      plan.threads = threads;
      const std::string json = exp::run(plan).to_json();
      if (reference.empty()) reference = json;
      EXPECT_EQ(json, reference) << "cache=" << cache << " threads=" << threads;
    }
  }
}

// Duplicate (system, coll, p) coordinates dedup to one work item but still
// produce one row block per occurrence, identical in content.
TEST(SweepEngine, PlannerDedupsCells) {
  exp::SweepPlan plan;
  plan.name = "dedup";
  plan.systems = {exp::SystemSpec{net::lumi_profile()}};
  plan.colls = {Collective::allreduce};
  plan.series = {exp::Series::best_bine(false)};
  plan.nodes.counts = {16, 16};  // duplicate on purpose
  plan.sizes = kSizes;
  EXPECT_EQ(exp::enumerate_cells(plan).size(), 1u);
  const exp::SweepResult result = exp::run(plan);
  ASSERT_EQ(result.rows.size(), 2 * kSizes.size());
  for (size_t si = 0; si < kSizes.size(); ++si) {
    const exp::Metrics& a = result.at(0, 0, 0, si, 0);
    const exp::Metrics& b = result.at(0, 0, 1, si, 0);
    EXPECT_EQ(a.algorithm, b.algorithm);
    EXPECT_EQ(a.seconds, b.seconds);
  }
}

// NodeAxis::extra_counts extends only the named collectives (the Leonardo
// methodology), and the canonical row order reflects it.
TEST(SweepEngine, NodeAxisExtension) {
  exp::SweepPlan plan = exp::paper::binomial_table(net::lumi_profile(), {8}, {256},
                                                   /*large:*/ {16});
  const exp::SweepResult result = exp::run(plan);
  for (size_t ci = 0; ci < result.colls.size(); ++ci) {
    const Collective coll = result.colls[ci];
    const bool extended =
        coll == Collective::allreduce || coll == Collective::allgather;
    EXPECT_EQ(result.coll_nodes[ci].size(), extended ? 2u : 1u) << to_string(coll);
  }
  const std::vector<exp::CellRef> cells = exp::enumerate_cells(plan);
  EXPECT_EQ(cells.size(), coll::all_collectives().size() + 2);
}

// Custom backend: empty axes collapse to placeholders, the metric sees the
// plan coordinates, Runner* is null without systems.
TEST(SweepEngine, CustomBackendPlaceholders) {
  exp::SweepPlan plan;
  plan.name = "custom";
  plan.backend = exp::Backend::custom;
  plan.sizes = {3, 5};
  plan.metric = [](const exp::CellCtx& ctx) {
    EXPECT_EQ(ctx.runner, nullptr);
    exp::Metrics m;
    m.value = static_cast<double>(ctx.size_bytes * 2);
    return m;
  };
  const exp::SweepResult result = exp::run(plan);
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_EQ(result.at(0, 0, 0, 0, 0).value, 6.0);
  EXPECT_EQ(result.at(0, 0, 0, 1, 0).value, 10.0);
  EXPECT_TRUE(result.colls.empty());
}

// Malformed plans are rejected up front, not discovered mid-sweep.
TEST(SweepEngine, ValidatesPlans) {
  exp::SweepPlan plan;
  plan.name = "bad";
  EXPECT_THROW((void)exp::run(plan), std::invalid_argument);  // empty axes

  plan.systems = {exp::SystemSpec{net::lumi_profile()}};
  plan.colls = {Collective::allreduce};
  plan.series = {exp::Series::tuned()};
  plan.nodes.counts = {16};
  plan.sizes = {256};
  EXPECT_THROW((void)exp::run(plan), std::invalid_argument);  // tuned w/o backend

  plan.series = {exp::Series::best_of("empty", {})};
  EXPECT_THROW((void)exp::run(plan), std::invalid_argument);  // no candidates
}

// The formatters only read the result table; a smoke check that they accept
// engine output (stdout content is covered by the bench golden runs).
TEST(SweepEngine, FormattersAcceptResults) {
  const exp::SweepResult table =
      exp::run(exp::paper::binomial_table(net::lumi_profile(), {8}, {256}));
  exp::print_binomial_table(table);
  const exp::SweepResult heat = exp::run(exp::paper::sota_heatmap(
      net::lumi_profile(), Collective::allreduce, {8, 16}, {256}));
  exp::print_sota_heatmap(heat);
  exp::print_sota_boxplots(
      exp::run(exp::paper::sota_boxplots(net::lumi_profile(), {8}, {256}, kColls)));
}
