// Registry surface: lookups, metadata, and the recommended-algorithm policy
// of Sec. 4.4/4.5, which must always return an executable-and-correct entry.
#include <gtest/gtest.h>

#include <set>

#include "coll/registry.hpp"
#include "runtime/compiled_executor.hpp"
#include "runtime/verify.hpp"

using namespace bine;

TEST(Registry, AllCollectivesHaveABineAndABaseline) {
  for (const sched::Collective coll : coll::all_collectives()) {
    const auto& entries = coll::algorithms_for(coll);
    EXPECT_GE(entries.size(), 3u) << to_string(coll);
    bool has_bine = false, has_baseline = false;
    std::set<std::string> names;
    for (const auto& e : entries) {
      EXPECT_TRUE(names.insert(e.name).second) << "duplicate name " << e.name;
      has_bine |= e.is_bine && !e.specialized;
      has_baseline |= !e.is_bine && !e.specialized;
    }
    EXPECT_TRUE(has_bine) << to_string(coll);
    EXPECT_TRUE(has_baseline) << to_string(coll);
  }
}

TEST(Registry, FindAlgorithmThrowsOnUnknownName) {
  EXPECT_THROW((void)coll::find_algorithm(sched::Collective::bcast, "nope"),
               std::out_of_range);
}

TEST(Registry, RecommendedPolicyMatchesPaper) {
  using sched::Collective;
  // Small vectors: tree / recursive-doubling variants (Sec. 4.4/4.5).
  EXPECT_EQ(coll::recommended_algorithm(Collective::bcast, 64, 1024).name, "bine");
  EXPECT_EQ(coll::recommended_algorithm(Collective::allreduce, 64, 1024).name,
            "bine_small");
  // Large vectors: composed variants with contiguous transmissions.
  EXPECT_EQ(coll::recommended_algorithm(Collective::bcast, 64, 8 << 20).name,
            "bine_scatter_allgather");
  EXPECT_EQ(coll::recommended_algorithm(Collective::allreduce, 64, 8 << 20).name,
            "bine_send");
  EXPECT_EQ(coll::recommended_algorithm(Collective::reduce, 64, 8 << 20).name,
            "bine_rs_gather");
  // Non-power-of-two falls back to strategies that support it.
  EXPECT_EQ(coll::recommended_algorithm(Collective::allreduce, 48, 8 << 20).name,
            "bine_two_trans");
  EXPECT_EQ(coll::recommended_algorithm(Collective::alltoall, 48, 1024).name, "bruck");
}

TEST(Registry, RecommendedAlgorithmsExecuteCorrectly) {
  for (const sched::Collective coll : coll::all_collectives()) {
    for (const i64 p : {8, 12, 16}) {
      for (const i64 bytes : {i64{512}, i64{1} << 20}) {
        const auto& entry = coll::recommended_algorithm(coll, p, bytes);
        coll::Config cfg;
        cfg.p = p;
        cfg.elem_count = std::max<i64>(p, bytes / 8);
        cfg.elem_size = 8;
        const sched::Schedule sch = entry.make(cfg);
        std::vector<std::vector<u64>> inputs(static_cast<size_t>(p));
        for (i64 r = 0; r < p; ++r) {
          inputs[static_cast<size_t>(r)].resize(static_cast<size_t>(cfg.elem_count));
          for (i64 e = 0; e < cfg.elem_count; ++e)
            inputs[static_cast<size_t>(r)][static_cast<size_t>(e)] =
                static_cast<u64>(r * 31 + e);
        }
        const runtime::ExecPlan plan = runtime::ExecPlan::lower(sch);
        const auto res = runtime::execute<u64>(plan, runtime::ReduceOp::sum, inputs);
        EXPECT_EQ(runtime::verify<u64>(plan, runtime::ReduceOp::sum, inputs, res), "")
            << to_string(coll) << " p=" << p << " bytes=" << bytes << " -> "
            << entry.name;
      }
    }
  }
}
