// Threaded-vs-sequential reference-executor equivalence (the nested oracles
// the compiled engine is checked against; see test_exec_engine.cpp), and the
// closed-form gather buffer ranges of paper Sec. 4.1/4.2.
#include <gtest/gtest.h>

#include "coll/registry.hpp"
#include "core/tree.hpp"
#include "runtime/threaded_executor.hpp"
#include "runtime/verify.hpp"

using namespace bine;

namespace {

std::vector<std::vector<u64>> make_inputs(i64 p, i64 elems) {
  std::vector<std::vector<u64>> in(static_cast<size_t>(p));
  for (i64 r = 0; r < p; ++r) {
    in[static_cast<size_t>(r)].resize(static_cast<size_t>(elems));
    for (i64 e = 0; e < elems; ++e)
      in[static_cast<size_t>(r)][static_cast<size_t>(e)] =
          static_cast<u64>(r) * 7919u + static_cast<u64>(e);
  }
  return in;
}

}  // namespace

TEST(ThreadedExecutor, MatchesSequentialAcrossAlgorithms) {
  // A representative algorithm per collective, run both ways; the resulting
  // buffers (and contributor sets) must be identical.
  const std::vector<std::pair<sched::Collective, const char*>> cases = {
      {sched::Collective::bcast, "bine"},
      {sched::Collective::reduce, "bine_rs_gather"},
      {sched::Collective::gather, "bine"},
      {sched::Collective::scatter, "bine"},
      {sched::Collective::allgather, "bine_send"},
      {sched::Collective::reduce_scatter, "bine_permute"},
      {sched::Collective::allreduce, "bine_two_trans"},
      {sched::Collective::alltoall, "bine"},
  };
  for (const auto& [coll, algo] : cases) {
    coll::Config cfg;
    cfg.p = 16;
    cfg.elem_count = 53;
    cfg.elem_size = 8;
    const sched::Schedule sch = coll::find_algorithm(coll, algo).make(cfg);
    const auto inputs = make_inputs(cfg.p, cfg.elem_count);
    const auto seq = runtime::execute_reference<u64>(sch, runtime::ReduceOp::sum, inputs);
    const auto thr = runtime::execute_threaded_reference<u64>(sch, runtime::ReduceOp::sum, inputs);
    ASSERT_EQ(seq.ranks.size(), thr.ranks.size()) << algo;
    EXPECT_EQ(seq.messages, thr.messages);
    EXPECT_EQ(seq.wire_bytes, thr.wire_bytes);
    for (size_t r = 0; r < seq.ranks.size(); ++r)
      for (size_t b = 0; b < seq.ranks[r].slots.size(); ++b) {
        const auto& a = seq.ranks[r].slots[b];
        const auto& c = thr.ranks[r].slots[b];
        ASSERT_EQ(a.valid, c.valid) << algo << " rank " << r << " block " << b;
        if (a.valid) {
          EXPECT_EQ(a.data, c.data) << algo << " rank " << r << " block " << b;
          EXPECT_TRUE(a.contributors == c.contributors);
        }
      }
    EXPECT_EQ(runtime::verify<u64>(sch, runtime::ReduceOp::sum, inputs, thr), "") << algo;
  }
}

TEST(ThreadedExecutor, DetectsDuplicateContribution) {
  coll::Config cfg;
  cfg.p = 4;
  cfg.elem_count = 8;
  sched::Schedule sch = coll::make_base(sched::Collective::reduce, cfg, "broken",
                                        sched::BlockSpace::per_vector);
  sch.add_exchange(0, 1, 0, sched::BlockSet::all(4), true);
  sch.add_exchange(1, 1, 0, sched::BlockSet::all(4), true);
  sch.add_exchange(0, 3, 2, sched::BlockSet::all(4), true);
  sch.normalize_steps();
  const auto in = make_inputs(4, 8);
  EXPECT_THROW(runtime::execute_threaded_reference<u64>(sch, runtime::ReduceOp::sum, in),
               std::runtime_error);
}

// --- Sec. 4.1/4.2 closed-form gather ranges -----------------------------------

TEST(GatherRanges, ClosedFormMatchesSubtreeIntervals) {
  // Sec. 4.2: even ranks end the gather having added 2^0+2^2+... to b and
  // subtracted 2^1+2^3+... from a; odd ranks the opposite. E.g. rank 0 on
  // p=8 ends with [a, b] = [6, 5] (the whole circular buffer).
  for (const i64 p : {4, 8, 16, 32, 64, 128}) {
    const int s = log2_exact(p);
    i64 even_up = 0, even_down = 0;
    for (int k = 0; k < s; ++k) {
      if (k % 2 == 0)
        even_up += i64{1} << k;
      else
        even_down += i64{1} << k;
    }
    for (Rank r = 0; r < p; ++r) {
      // Closed form of the final circular range [a, b] for rank r.
      const bool even = r % 2 == 0;
      const i64 a = pmod(r - (even ? even_down : even_up), p);
      const i64 b = pmod(r + (even ? even_up : even_down), p);
      EXPECT_EQ(pmod(b - a, p), p - 1) << "range must cover the whole buffer";
      // The root's full-gather interval from the tree machinery must agree:
      // the subtree of the root (= everything) anchored the same way.
      const core::CircularInterval iv =
          core::subtree_interval(core::TreeVariant::bine_dh, 0, p);
      EXPECT_EQ(iv.length, p);
    }
  }
  // The paper's concrete example: rank 0, p = 8 -> [a, b] = [6, 5].
  EXPECT_EQ(pmod(0 - (2), 8), 6);       // a = -(2^1) = -2 -> 6
  EXPECT_EQ(pmod(0 + (1 + 4), 8), 5);   // b = +(2^0 + 2^2) = +5 -> 5
}

TEST(GatherRanges, PerStepGrowthAlternatesDirection) {
  // Sec. 4.1: even ranks extend upward at even gather steps and downward at
  // odd steps (odd ranks mirrored). Verify against the actual tree: the
  // subtree interval gained at each gather step sits on the predicted side.
  const i64 p = 32;
  const int s = log2_exact(p);
  for (Rank r = 0; r < p; ++r) {
    const int joined = r == 0 ? -1 : core::join_step(core::TreeVariant::bine_dh, r, p);
    for (int st = joined + 1; st < s; ++st) {
      const Rank child = core::tree_partner(core::TreeVariant::bine_dh, r, st, p);
      const core::CircularInterval sub =
          core::subtree_interval(core::TreeVariant::bine_dh, child, p);
      // Gather step index g counts from the leaves: g = s - 1 - st.
      const int g = s - 1 - st;
      const bool even_rank = r % 2 == 0;
      const bool upward = even_rank ? (g % 2 == 0) : (g % 2 == 1);
      const i64 disp = core::modular_displacement(r, child, p);
      EXPECT_EQ(disp > 0, upward)
          << "rank " << r << " gather step " << g << " child " << child;
      (void)sub;
    }
  }
}
