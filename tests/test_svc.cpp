// Selection-service tests: an in-process svc::Server on a Unix socket,
// exercised through svc::Client. Covered: select parity with local
// tune::select against the same table; the staleness handshake (fingerprint
// mismatch -> structured error, wrong profile -> structured error); explicit
// pipelining; single-flight tune-on-miss under concurrent clients (exactly
// one Tuner build per distinct missed cell) with responses deterministic
// across client thread counts {1, 4}; sweep jobs matching a local exp::run
// byte-for-byte, with the plan-level cache turning resubmission into an
// identical replay; table persistence across server restarts; startup
// stale-temp hygiene; the stats document; and protocol robustness (garbage
// frames close the connection without taking the server down).
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "coll/registry.hpp"
#include "exp/plan_codec.hpp"
#include "exp/sweep.hpp"
#include "net/profiles.hpp"
#include "svc/client.hpp"
#include "svc/server.hpp"
#include "tune/decision_table.hpp"
#include "tune/json.hpp"

using namespace bine;
using sched::Collective;

namespace {

/// Per-test unique socket path (short: Unix socket paths cap near 100 bytes,
/// and ctest's cwd is already deep).
std::string test_socket(const char* tag) {
  return std::string("svc_") + tag + "_" + std::to_string(::getpid()) + ".sock";
}

/// A dense hand-built table: every collective, several node counts, two size
/// intervals, algorithm names straight from the registry.
tune::DecisionTable dense_table(const net::SystemProfile& profile) {
  tune::DecisionTable table;
  table.set_profile(profile.name, tune::profile_fingerprint(profile));
  for (const Collective coll : coll::all_collectives()) {
    const auto& algos = coll::algorithms_for(coll);
    for (const i64 p : {8, 16, 64}) {
      std::vector<tune::SizeInterval> intervals;
      intervals.push_back({0, 1 << 16, algos.front().name});
      intervals.push_back({1 << 16, tune::kNoUpperBound, algos.back().name});
      table.set_cell(tune::CellKey{profile.name, coll, p}, std::move(intervals));
    }
  }
  return table;
}

svc::SelectRequest make_request(const net::SystemProfile& profile,
                                Collective coll, i64 p, i64 bytes) {
  svc::SelectRequest req;
  req.profile = profile.name;
  req.fingerprint = tune::profile_fingerprint(profile);
  req.coll = coll;
  req.p = p;
  req.bytes = bytes;
  return req;
}

/// RAII server bound to a fresh socket, table installed in-memory.
struct TestServer {
  explicit TestServer(const char* tag, svc::ServerOptions opts = {})
      : socket_path(test_socket(tag)) {
    std::remove(socket_path.c_str());
    opts.unix_socket = socket_path;
    if (opts.profiles.empty()) opts.profiles = {net::lumi_profile()};
    server.emplace(std::move(opts));
  }
  ~TestServer() {
    server->stop();
    std::remove(socket_path.c_str());
  }
  svc::Client connect() { return svc::Client::connect_to_unix(socket_path); }

  std::string socket_path;
  std::optional<svc::Server> server;
};

exp::SweepPlan tiny_plan() {
  exp::SweepPlan plan;
  plan.name = "svc_test_plan";
  plan.systems = {exp::SystemSpec{net::lumi_profile()}};
  plan.colls = {Collective::allreduce};
  plan.series = {exp::Series::best_of("pair", {"ring", "rabenseifner"})};
  plan.nodes.counts = {8, 16};
  plan.sizes = {1024, 1 << 16};
  plan.threads = 1;
  return plan;
}

}  // namespace

TEST(Svc, SelectParityWithLocalTable) {
  const net::SystemProfile lumi = net::lumi_profile();
  const tune::DecisionTable table = dense_table(lumi);

  const std::string table_path = "svc_parity_table.json";
  table.save(table_path);
  svc::ServerOptions opts;
  opts.table_path = table_path;
  opts.tune_on_miss = false;
  TestServer ts("parity", std::move(opts));
  ts.server->start();
  svc::Client client = ts.connect();

  for (const Collective coll : coll::all_collectives())
    for (const i64 p : {8, 16, 64})
      for (const i64 bytes : {0, 1024, 1 << 16, 1 << 22}) {
        const svc::SelectReply reply =
            client.select(make_request(lumi, coll, p, bytes));
        const tune::Selection local = tune::select(table, lumi, coll, p, bytes);
        ASSERT_NE(local.entry, nullptr);
        EXPECT_EQ(reply.algorithm, local.entry->name);
        EXPECT_TRUE(reply.from_table);
        EXPECT_EQ(reply.from_table, local.from_table);
      }

  // A miss with tuning off serves the same heuristic tune::select serves.
  const svc::SelectReply miss =
      client.select(make_request(lumi, Collective::allreduce, 32, 1024));
  const tune::Selection local =
      tune::select(table, lumi, Collective::allreduce, 32, 1024);
  EXPECT_EQ(miss.algorithm, local.entry->name);
  EXPECT_FALSE(miss.from_table);
  std::remove(table_path.c_str());
}

TEST(Svc, StaleFingerprintAndUnknownProfileRejected) {
  TestServer ts("stale");
  ts.server->start();
  svc::Client client = ts.connect();

  svc::SelectRequest req =
      make_request(net::lumi_profile(), Collective::allreduce, 16, 1024);
  req.fingerprint ^= 1;  // a client built against a different machine model
  try {
    (void)client.select(req);
    FAIL() << "stale fingerprint accepted";
  } catch (const svc::ServiceError& e) {
    EXPECT_EQ(e.code(), svc::ErrorCode::stale_fingerprint);
  }

  svc::SelectRequest wrong =
      make_request(net::leonardo_profile(), Collective::allreduce, 16, 1024);
  try {
    (void)client.select(wrong);
    FAIL() << "unknown profile accepted";
  } catch (const svc::ServiceError& e) {
    EXPECT_EQ(e.code(), svc::ErrorCode::unknown_profile);
  }

  // The connection survives structured errors: a good request still answers.
  const svc::SelectReply ok = client.select(
      make_request(net::lumi_profile(), Collective::allreduce, 16, 1024));
  EXPECT_FALSE(ok.algorithm.empty());

  const svc::ServerStats stats = ts.server->stats_snapshot();
  EXPECT_EQ(stats.stale_rejected, 1u);
  EXPECT_EQ(stats.unknown_profile, 1u);
}

TEST(Svc, PipelinedBatchMatchesPerCallSelects) {
  const net::SystemProfile lumi = net::lumi_profile();
  const std::string table_path = "svc_batch_table.json";
  dense_table(lumi).save(table_path);
  svc::ServerOptions opts;
  opts.table_path = table_path;
  opts.tune_on_miss = false;
  TestServer ts("batch", std::move(opts));
  ts.server->start();
  svc::Client client = ts.connect();

  std::vector<svc::SelectRequest> batch;
  for (const Collective coll : coll::all_collectives())
    for (const i64 bytes : {1024, 1 << 20})
      batch.push_back(make_request(lumi, coll, 16, bytes));

  const std::vector<svc::SelectReply> replies = client.select_batch(batch);
  ASSERT_EQ(replies.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    const svc::SelectReply one = client.select(batch[i]);
    EXPECT_EQ(replies[i].algorithm, one.algorithm) << i;
    EXPECT_EQ(replies[i].from_table, one.from_table) << i;
  }
  std::remove(table_path.c_str());
}

namespace {

/// Issue the same mixed hit/miss query set from `nthreads` clients; return
/// the (deterministic) query -> algorithm map and the server's build count.
std::pair<std::map<std::string, std::string>, u64> run_mixed_queries(
    const char* tag, i64 nthreads) {
  const net::SystemProfile lumi = net::lumi_profile();

  // Pre-seed exactly one cell so hits and misses interleave.
  tune::DecisionTable seeded;
  seeded.set_profile("lumi", tune::profile_fingerprint(lumi));
  seeded.set_cell(tune::CellKey{"lumi", Collective::allgather, 8},
                  {{0, tune::kNoUpperBound,
                    coll::algorithms_for(Collective::allgather).front().name}});
  const std::string table_path = std::string("svc_") + tag + "_table.json";
  seeded.save(table_path);

  svc::ServerOptions opts;
  opts.table_path = table_path;
  opts.tune_on_miss = true;
  opts.tuner.size_grid = {1024, 1 << 16};  // small grid: tests tune live
  TestServer ts(tag, std::move(opts));
  ts.server->start();

  // Two distinct missing cells + one seeded cell, several sizes each.
  const std::vector<std::pair<Collective, i64>> cells = {
      {Collective::allgather, 8},       // hit
      {Collective::allreduce, 8},       // miss -> one build
      {Collective::reduce_scatter, 8},  // miss -> one build
  };
  const std::vector<i64> sizes = {1024, 1 << 16};

  std::vector<std::map<std::string, std::string>> per_thread(
      static_cast<size_t>(nthreads));
  std::vector<std::thread> threads;
  for (i64 t = 0; t < nthreads; ++t)
    threads.emplace_back([&, t] {
      svc::Client client = ts.connect();
      for (int round = 0; round < 3; ++round)
        for (const auto& [coll, p] : cells)
          for (const i64 bytes : sizes) {
            const svc::SelectReply r =
                client.select(make_request(lumi, coll, p, bytes));
            const std::string key = std::string(sched::to_string(coll)) + "/p" +
                                    std::to_string(p) + "/" +
                                    std::to_string(bytes);
            per_thread[static_cast<size_t>(t)][key] = r.algorithm;
          }
    });
  for (std::thread& t : threads) t.join();

  // Every thread observed the same winner for every query.
  for (const auto& m : per_thread) EXPECT_EQ(m, per_thread[0]);

  const u64 builds = ts.server->stats_snapshot().tune_builds;
  std::remove(table_path.c_str());
  return {per_thread[0], builds};
}

}  // namespace

TEST(Svc, TuneOnMissIsSingleFlightAndDeterministic) {
  const auto [serial, serial_builds] = run_mixed_queries("miss1", 1);
  const auto [parallel, parallel_builds] = run_mixed_queries("miss4", 4);

  // Exactly one Tuner build per distinct missed cell, no matter how many
  // concurrent clients raced on the miss.
  EXPECT_EQ(serial_builds, 2u);
  EXPECT_EQ(parallel_builds, 2u);

  // And the answers are a pure function of the queries: thread counts
  // {1, 4} agree on every winner.
  EXPECT_EQ(serial, parallel);
}

TEST(Svc, SweepJobMatchesLocalRunAndCaches) {
  const std::string journal_dir = "svc_sweep_journal";
  ::mkdir(journal_dir.c_str(), 0755);
  svc::ServerOptions opts;
  opts.journal_dir = journal_dir;
  TestServer ts("sweep", std::move(opts));
  ts.server->start();
  svc::Client client = ts.connect();

  const exp::SweepPlan plan = tiny_plan();
  const std::string local_json = exp::run(plan).to_json();

  const svc::SweepReply first = client.sweep(plan);
  EXPECT_FALSE(first.begin.cache_hit);
  EXPECT_EQ(first.begin.executed, 2);  // two (system, coll, p) cells
  EXPECT_EQ(first.result_json, local_json);
  EXPECT_EQ(first.plan_fingerprint, exp::plan_fingerprint(plan));

  // Resubmission: cache hit, byte-identical, nothing re-executed.
  const svc::SweepReply second = client.sweep(plan);
  EXPECT_TRUE(second.begin.cache_hit);
  EXPECT_EQ(second.result_json, local_json);
  EXPECT_EQ(second.plan_fingerprint, first.plan_fingerprint);

  const svc::ServerStats stats = ts.server->stats_snapshot();
  EXPECT_EQ(stats.sweep_jobs, 2u);
  EXPECT_EQ(stats.plan_cache_misses, 1u);
  EXPECT_EQ(stats.plan_cache_hits, 1u);
  EXPECT_EQ(stats.journal_executed, 2);
  // The executed job ran its cells candidate-batched through the process-wide
  // route memo; the local exp::run above already warmed the scope, so the
  // job's pair resolutions were hits.
  EXPECT_GT(stats.route_memo_hits, 0u);
  EXPECT_GT(stats.route_memo_scopes, 0u);

  // The journal artifact exists, keyed by the plan fingerprint.
  char journal_name[64];
  std::snprintf(journal_name, sizeof(journal_name), "plan_%016llx.bj",
                static_cast<unsigned long long>(first.plan_fingerprint));
  const std::string journal_path = journal_dir + "/" + journal_name;
  struct stat st{};
  EXPECT_EQ(::stat(journal_path.c_str(), &st), 0) << journal_path;
  std::remove(journal_path.c_str());
  ::rmdir(journal_dir.c_str());
}

TEST(Svc, BadPlanAnswersStructuredError) {
  TestServer ts("badplan");
  ts.server->start();
  svc::Client client = ts.connect();
  try {
    (void)client.sweep_json("{\"format\": \"bine-sweep-plan\", \"version\": 1}");
    FAIL() << "malformed plan accepted";
  } catch (const svc::ServiceError& e) {
    EXPECT_EQ(e.code(), svc::ErrorCode::bad_plan);
  }
  // The connection survives; a select still answers.
  const svc::SelectReply ok = client.select(
      make_request(net::lumi_profile(), Collective::allreduce, 16, 1024));
  EXPECT_FALSE(ok.algorithm.empty());
}

TEST(Svc, TunedCellsPersistAcrossRestart) {
  const std::string table_path = "svc_persist_table.json";
  std::remove(table_path.c_str());
  const net::SystemProfile lumi = net::lumi_profile();
  const auto req = make_request(lumi, Collective::allreduce, 8, 1024);

  std::string tuned_algorithm;
  {
    svc::ServerOptions opts;
    opts.table_path = table_path;
    opts.tuner.size_grid = {1024};
    TestServer ts("persist1", std::move(opts));
    ts.server->start();
    svc::Client client = ts.connect();
    const svc::SelectReply reply = client.select(req);
    EXPECT_TRUE(reply.from_table);  // tuned on miss, then served from the merge
    tuned_algorithm = reply.algorithm;
    EXPECT_EQ(ts.server->stats_snapshot().tune_builds, 1u);
  }

  // A fresh server on the same artifact serves the tuned cell as a pure hit.
  {
    svc::ServerOptions opts;
    opts.table_path = table_path;
    TestServer ts("persist2", std::move(opts));
    ts.server->start();
    svc::Client client = ts.connect();
    const svc::SelectReply reply = client.select(req);
    EXPECT_TRUE(reply.from_table);
    EXPECT_EQ(reply.algorithm, tuned_algorithm);
    const svc::ServerStats stats = ts.server->stats_snapshot();
    EXPECT_EQ(stats.tune_builds, 0u);
    EXPECT_EQ(stats.select_hits, 1u);
  }
  std::remove(table_path.c_str());
}

TEST(Svc, StartupCleansStaleTemps) {
  const std::string journal_dir = "svc_clean_journal";
  ::mkdir(journal_dir.c_str(), 0755);
  // A stranded AtomicFile temp from a dead writer (pid 999999 is not ours
  // and -- in any sane test environment -- not alive).
  const std::string stale = journal_dir + "/plan_0000000000000001.bj.tmp.999999.3";
  {
    std::FILE* f = std::fopen(stale.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("torn", f);
    std::fclose(f);
  }

  svc::ServerOptions opts;
  opts.journal_dir = journal_dir;
  TestServer ts("clean", std::move(opts));
  ts.server->start();

  struct stat st{};
  EXPECT_NE(::stat(stale.c_str(), &st), 0) << "stale temp survived startup";
  EXPECT_GE(ts.server->stats_snapshot().stale_temps_cleaned, 1);
  ::rmdir(journal_dir.c_str());
}

TEST(Svc, StatsDocumentParses) {
  TestServer ts("stats");
  ts.server->start();
  svc::Client client = ts.connect();
  (void)client.select(
      make_request(net::lumi_profile(), Collective::allreduce, 16, 1024));

  const std::string doc = client.stats();
  const tune::json::Value v = tune::json::Value::parse(doc);
  EXPECT_EQ(v.at("format", "format").as_string("format"), "bine-svc-stats");
  EXPECT_EQ(v.at("version", "version").as_i64("version"), 1);
  const auto& select = v.at("select", "select");
  EXPECT_EQ(select.at("requests", "requests").as_i64("requests"), 1);
  EXPECT_GE(v.at("connections", "connections").as_i64("connections"), 1);
  // Nested groups all present.
  (void)v.at("sweep", "sweep");
  (void)v.at("table", "table");
  (void)v.at("schedule_cache", "schedule_cache");
  // Route-memo counters: the tune-on-miss above ranked its candidate pool
  // batched, so the process memo has at least one scope with traffic.
  const auto& memo = v.at("route_memo", "route_memo");
  EXPECT_GT(memo.at("scopes", "scopes").as_i64("scopes"), 0);
  EXPECT_GT(memo.at("hits", "hits").as_i64("hits") +
                memo.at("misses", "misses").as_i64("misses"),
            0);
  EXPECT_GT(memo.at("bytes", "bytes").as_i64("bytes"), 0);
}

TEST(Svc, GarbageFramesCloseOnlyThatConnection) {
  TestServer ts("garbage");
  ts.server->start();

  {
    svc::Fd fd = svc::connect_unix(ts.socket_path);
    // Length prefix far past kMaxFrameBytes: the server must answer
    // bad_frame and close, not allocate 4 GiB.
    const char huge[5] = {'\xff', '\xff', '\xff', '\xff', '\x01'};
    ASSERT_TRUE(svc::send_all(fd, std::string_view(huge, sizeof(huge))));
    std::string drain;
    while (svc::recv_some(fd, drain)) {
    }  // server replies error then EOF
  }

  // The server is still healthy for other clients.
  svc::Client client = ts.connect();
  const svc::SelectReply ok = client.select(
      make_request(net::lumi_profile(), Collective::allreduce, 16, 1024));
  EXPECT_FALSE(ok.algorithm.empty());
  EXPECT_GE(ts.server->stats_snapshot().bad_frames, 1u);
}

TEST(Svc, ShutdownRequestDrainsGracefully) {
  TestServer ts("shutdown");
  ts.server->start();
  {
    svc::Client client = ts.connect();
    client.shutdown_server();  // acknowledged before the drain
  }
  ts.server->wait();  // returns: the shutdown frame requested the stop
  ts.server->stop();
  EXPECT_TRUE(ts.server->stopping());
  // The listener is gone: further connects fail.
  EXPECT_THROW((void)svc::Client::connect_to_unix(ts.socket_path),
               std::exception);
}

TEST(Svc, TcpLoopbackServesToo) {
  svc::ServerOptions opts;
  opts.tcp_port = 0;  // kernel-assigned
  TestServer ts("tcp", std::move(opts));
  ts.server->start();
  ASSERT_NE(ts.server->tcp_port(), 0);
  svc::Client client = svc::Client::connect_to_tcp(ts.server->tcp_port());
  const svc::SelectReply ok = client.select(
      make_request(net::lumi_profile(), Collective::allreduce, 16, 1024));
  EXPECT_FALSE(ok.algorithm.empty());
}
