// Schedule-generation fast path tests: SizeFreeSchedule resolution parity
// against fresh lowering at every vector size, Runner cached-vs-uncached
// bit-exactness across all four topology families, batched-sweep
// equivalence with the per-query selectors, thread-count/cache determinism
// of sweep output, demotion of size-dependent schedules, and scoped
// RouteCache equality with the eager build.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "coll/registry.hpp"
#include "harness/runner.hpp"
#include "net/profiles.hpp"
#include "net/route_cache.hpp"
#include "net/simulate.hpp"
#include "sched/compiled.hpp"
#include "sched/schedule_cache.hpp"

using namespace bine;

namespace {

template <class T>
std::vector<T> as_vec(std::span<const T> s) {
  return {s.begin(), s.end()};
}

void expect_same_ir(const sched::CompiledSchedule& a, const sched::CompiledSchedule& b,
                    const std::string& what) {
  EXPECT_EQ(a.p, b.p) << what;
  EXPECT_EQ(a.steps, b.steps) << what;
  EXPECT_EQ(as_vec(a.step_begin), as_vec(b.step_begin)) << what;
  EXPECT_EQ(as_vec(a.kind), as_vec(b.kind)) << what;
  EXPECT_EQ(as_vec(a.rank), as_vec(b.rank)) << what;
  EXPECT_EQ(as_vec(a.peer), as_vec(b.peer)) << what;
  EXPECT_EQ(as_vec(a.bytes), as_vec(b.bytes)) << what;
  EXPECT_EQ(as_vec(a.extra_segments), as_vec(b.extra_segments)) << what;
}

}  // namespace

// One cached SizeFreeSchedule entry must resolve, for EVERY vector size, to
// the exact CompiledSchedule a fresh generate+lower produces -- the
// size-independence invariant the cache is built on.
TEST(SizeFreeSchedule, ResolvesToFreshLoweringAtEverySize) {
  const struct {
    sched::Collective coll;
    const char* name;
  } cases[] = {
      {sched::Collective::allreduce, "recursive_doubling"},
      {sched::Collective::allreduce, "rabenseifner"},
      {sched::Collective::allreduce, "bine_two_trans"},
      {sched::Collective::allreduce, "bine_permute"},
      {sched::Collective::allreduce, "bine_send"},
      {sched::Collective::allreduce, "ring"},
      {sched::Collective::bcast, "binomial"},
      {sched::Collective::bcast, "bine"},
      {sched::Collective::bcast, "bine_scatter_allgather"},
      {sched::Collective::reduce, "bine_rs_gather"},
      {sched::Collective::reduce_scatter, "bine_block"},
      {sched::Collective::allgather, "bruck"},
      {sched::Collective::gather, "bine"},
      {sched::Collective::scatter, "binomial"},
      {sched::Collective::alltoall, "bruck"},
      {sched::Collective::alltoall, "bine"},
      {sched::Collective::alltoall, "pairwise"},
  };
  for (const i64 p : {16, 24}) {  // pow2 and non-pow2
    for (const auto& c : cases) {
      const auto& entry = coll::find_algorithm(c.coll, c.name);
      if (entry.pow2_only && !is_pow2(p)) continue;
      SCOPED_TRACE(std::string(c.name) + " p=" + std::to_string(p));

      coll::Config build_cfg;
      build_cfg.p = p;
      build_cfg.elem_count = 3 * p + 1;  // canonical size != any probed size
      const auto sf = std::make_shared<const sched::SizeFreeSchedule>(
          sched::SizeFreeSchedule::from(entry.make(build_cfg)));
      ASSERT_TRUE(sf->size_independent);

      sched::CompiledSchedule resolved;
      for (const i64 elem_count : {p, 2 * p, 7 * p + 3, i64{262144}}) {
        coll::Config cfg = build_cfg;
        cfg.elem_count = elem_count;
        const sched::CompiledSchedule fresh =
            sched::CompiledSchedule::lower(entry.make(cfg));
        sched::SizeFreeSchedule::resolve_into(sf, cfg.elem_count, cfg.elem_size,
                                              resolved);
        expect_same_ir(resolved, fresh, "elem_count=" + std::to_string(elem_count));
        // The size-invariant columns must be shared, not copied: that is the
        // point of the span-based resolve (O(bytes column) per cell).
        EXPECT_EQ(resolved.kind.data(), sf->kind.data());
        EXPECT_EQ(resolved.step_begin.data(), sf->step_begin.data());
      }
    }
  }
}

// A schedule whose bytes can't be re-derived from blocks (here: a local op
// moving half the vector) must be demoted, never mis-resolved.
TEST(SizeFreeSchedule, SizeDependentSchedulesAreDemoted) {
  sched::Schedule sch;
  sch.coll = sched::Collective::allreduce;
  sch.algorithm = "half_vector_local";
  sch.p = 2;
  sch.nblocks = 2;
  sch.elem_count = 64;
  sch.elem_size = 4;
  sch.steps.assign(2, {});
  sch.add_exchange(0, 0, 1, sched::BlockSet::all(2), true);
  sch.add_local(1, 0, /*bytes_moved=*/sch.elem_count * sch.elem_size / 2, 1);
  sch.normalize_steps();
  EXPECT_FALSE(sched::SizeFreeSchedule::from(sch).size_independent);

  // The full-vector pattern every generator actually uses stays cacheable.
  sched::Schedule ok = sch;
  ok.steps.assign(2, {});
  ok.add_exchange(0, 0, 1, sched::BlockSet::all(2), true);
  ok.add_local(1, 0, ok.elem_count * ok.elem_size, 1);
  ok.normalize_steps();
  EXPECT_TRUE(sched::SizeFreeSchedule::from(ok).size_independent);
}

// A generator whose *structure* (not just bytes) branches on elem_count is
// internally byte-consistent at any one size, so only the cache's two-probe
// structural cross-check can catch it. It must come back demoted.
TEST(ScheduleCache, StructureBranchingOnElemCountIsDemoted) {
  sched::ScheduleCache cache;
  sched::ScheduleKey key;
  key.coll = sched::Collective::allreduce;
  key.algorithm = "size_branching_fake";
  key.p = 8;

  const auto build = [&](i64 elem_count) {
    coll::Config cfg;
    cfg.p = key.p;
    cfg.elem_count = elem_count;
    // A size-threshold algorithm switch, the classic real-world offender.
    const char* name = elem_count * cfg.elem_size > (i64{1} << 20) ? "ring"
                                                                   : "recursive_doubling";
    return coll::find_algorithm(sched::Collective::allreduce, name).make(cfg);
  };
  EXPECT_FALSE(cache.get(key, build)->size_independent);

  // An honest generator through the same two-probe path stays cacheable and
  // hits on re-request.
  sched::ScheduleKey honest = key;
  honest.algorithm = "recursive_doubling";
  const auto honest_build = [&](i64 elem_count) {
    coll::Config cfg;
    cfg.p = honest.p;
    cfg.elem_count = elem_count;
    return coll::find_algorithm(sched::Collective::allreduce, "recursive_doubling")
        .make(cfg);
  };
  EXPECT_TRUE(cache.get(honest, honest_build)->size_independent);
  EXPECT_EQ(cache.get(honest, honest_build), cache.get(honest, honest_build));
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 2u);
}

// Cache-hit cells must be bit-exact with fresh generation on every topology
// family: dragonfly (lumi), dragonfly+ (leonardo), torus (fugaku), and
// multi-GPU -- TrafficStats integer-equal, seconds within 1e-12 relative
// (they are in fact the same arithmetic, so we assert exact equality).
TEST(ScheduleCache, CachedRunsMatchUncachedAcrossTopologyFamilies) {
  std::vector<net::SystemProfile> profiles;
  profiles.push_back(net::lumi_profile());
  profiles.push_back(net::leonardo_profile());
  profiles.push_back(net::fugaku_profile({4, 4, 4}));
  profiles.push_back(net::multigpu_profile());

  const std::vector<sched::Collective> colls = {
      sched::Collective::allreduce, sched::Collective::bcast,
      sched::Collective::reduce_scatter, sched::Collective::alltoall};
  const std::vector<i64> sizes = {32, 16384, 1048576};

  for (auto& profile : profiles) {
    harness::Runner cached(profile);
    harness::Runner uncached(profile);
    cached.set_schedule_cache(true);
    cached.use_private_schedule_cache();  // per-profile stats for the assert below
    uncached.set_schedule_cache(false);
    for (const sched::Collective coll : colls) {
      for (const auto& entry : coll::algorithms_for(coll)) {
        if (entry.specialized) continue;
        if (entry.pow2_only && !is_pow2(64)) continue;
        for (const i64 size : sizes) {
          SCOPED_TRACE(profile.name + "/" + entry.name + "/" +
                       harness::size_label(size));
          const harness::RunResult a = cached.run(coll, entry, 64, size);
          const harness::RunResult b = uncached.run(coll, entry, 64, size);
          EXPECT_EQ(a.seconds, b.seconds);  // bitwise: same arithmetic must run
          EXPECT_EQ(a.global_bytes, b.global_bytes);
          EXPECT_EQ(a.total_bytes, b.total_bytes);
          EXPECT_EQ(a.steps, b.steps);
        }
      }
    }
    // The whole point: one entry per (algorithm, p), hit for every extra size.
    const auto stats = cached.schedule_cache_stats();
    EXPECT_GT(stats.hits, stats.misses) << profile.name;
  }
}

namespace {

std::vector<harness::SweepQuery> determinism_queries() {
  std::vector<harness::SweepQuery> queries;
  for (const sched::Collective coll :
       {sched::Collective::allreduce, sched::Collective::bcast,
        sched::Collective::alltoall})
    for (const i64 size : {256, 16384, 1048576}) {
      queries.push_back({coll, 64, size, harness::SweepQuery::Kind::bine, true});
      queries.push_back({coll, 64, size, harness::SweepQuery::Kind::binomial, false});
      queries.push_back({coll, 64, size, harness::SweepQuery::Kind::sota, false});
    }
  return queries;
}

}  // namespace

// Batched sweep output must be identical to the per-query selectors
// (best_bine/best_binomial/best_of-over-sota), cached or not, for
// single-thread and BINE_THREADS=4-style multi-thread runs.
TEST(ScheduleCache, SweepIsByteIdenticalAcrossThreadsAndCacheModes) {
  const auto queries = determinism_queries();

  // Reference: per-query selectors on an uncached runner (the pre-batching,
  // pre-caching code path).
  harness::Runner oracle(net::fugaku_profile({4, 4, 4}));
  oracle.set_schedule_cache(false);
  std::vector<std::pair<std::string, harness::RunResult>> expect;
  for (const auto& q : queries) {
    switch (q.kind) {
      case harness::SweepQuery::Kind::bine:
        expect.push_back(oracle.best_bine(q.coll, q.nodes, q.size_bytes, q.contiguous_only));
        break;
      case harness::SweepQuery::Kind::binomial:
        expect.push_back(oracle.best_binomial(q.coll, q.nodes, q.size_bytes));
        break;
      case harness::SweepQuery::Kind::sota:
        expect.push_back(
            oracle.best_of(q.coll, oracle.sota_names(q.coll), q.nodes, q.size_bytes));
        break;
    }
  }

  for (const bool use_cache : {false, true}) {
    for (const i64 threads : {1, 4}) {
      harness::Runner runner(net::fugaku_profile({4, 4, 4}));
      runner.set_schedule_cache(use_cache);
      const auto got = runner.sweep(queries, threads);
      ASSERT_EQ(got.size(), expect.size());
      for (size_t i = 0; i < got.size(); ++i) {
        SCOPED_TRACE("query " + std::to_string(i) + " cache=" +
                     std::to_string(use_cache) + " threads=" + std::to_string(threads));
        EXPECT_EQ(got[i].first, expect[i].first);
        EXPECT_EQ(got[i].second.seconds, expect[i].second.seconds);
        EXPECT_EQ(got[i].second.global_bytes, expect[i].second.global_bytes);
        EXPECT_EQ(got[i].second.total_bytes, expect[i].second.total_bytes);
        EXPECT_EQ(got[i].second.steps, expect[i].second.steps);
      }
    }
  }
}

// The scoped route build used by the Schedule-level conveniences must agree
// with an eager cache on every pair the schedule touches, and skip the bulk
// of the route work (the point of the ROADMAP's laziness item).
TEST(ScopedRouteCache, MatchesEagerOnSchedulePairs) {
  const net::Torus topo({4, 4, 4}, 6.8e9);
  const net::Placement pl = net::Placement::identity(topo.num_nodes());
  const net::CostParams cp;

  coll::Config cfg;
  cfg.p = topo.num_nodes();
  cfg.elem_count = 3 * cfg.p;
  for (const char* name : {"recursive_doubling", "bine_two_trans", "ring"}) {
    SCOPED_TRACE(name);
    const sched::Schedule sch =
        coll::find_algorithm(sched::Collective::allreduce, name).make(cfg);
    const sched::CompiledSchedule cs = sched::CompiledSchedule::lower(sch);

    const net::RouteCache eager(topo, pl);
    std::vector<std::pair<Rank, Rank>> pairs;
    for (size_t i = 0; i < cs.num_ops(); ++i)
      if (cs.kind[i] == sched::OpKind::send) pairs.emplace_back(cs.rank[i], cs.peer[i]);
    const net::RouteCache scoped(topo, pl, pairs);

    i64 scoped_links = 0;
    for (const auto& [s, d] : pairs) {
      ASSERT_TRUE(scoped.routed(s, d));
      const auto a = eager.path(s, d);
      const auto b = scoped.path(s, d);
      ASSERT_EQ(std::vector<i64>(b.begin(), b.end()), std::vector<i64>(a.begin(), a.end()));
      EXPECT_EQ(scoped.hops(s, d).local, eager.hops(s, d).local);
      EXPECT_EQ(scoped.hops(s, d).global, eager.hops(s, d).global);
      EXPECT_EQ(scoped.hops(s, d).intra_node, eager.hops(s, d).intra_node);
      scoped_links += static_cast<i64>(b.size());
    }

    // Full simulation parity: the convenience overload (which routes scoped)
    // against the compiled engine on the eager cache.
    const net::SimResult conv = net::simulate(sch, topo, pl, cp);
    const net::SimResult fast = net::simulate(cs, eager, cp);
    EXPECT_EQ(conv.seconds, fast.seconds);
    EXPECT_EQ(conv.traffic.local_bytes, fast.traffic.local_bytes);
    EXPECT_EQ(conv.traffic.global_bytes, fast.traffic.global_bytes);
    EXPECT_EQ(conv.traffic.intra_node_bytes, fast.traffic.intra_node_bytes);
    EXPECT_EQ(conv.traffic.messages, fast.traffic.messages);
  }
}
